package borg

import (
	"borg/internal/obs"
	"borg/internal/relation"
	"borg/internal/serve"
	"borg/internal/shard"
)

// ShardOptions tunes a ShardedServer: the per-shard serving knobs plus
// the partitioning scheme. The zero value selects one shard (a plain
// server behind the same API).
type ShardOptions struct {
	ServerOptions
	// Shards is the number of independent serving shards (default 1).
	// Each shard owns its own IVM maintainer and single-writer ingest
	// queue, so ingest parallelism scales with the shard count.
	Shards int
	// PartitionBy names the attribute tuples are hash-partitioned on.
	// It must appear in every relation of the join — that is what keeps
	// equi-join partners on the same shard and makes merged reads exact.
	// Required for two or more shards.
	PartitionBy string
}

// ShardedServer is the horizontally scaled Server: tuples are hash-
// partitioned on a shared attribute across independent serving shards,
// and every read folds the per-shard snapshots with ring addition into
// one exact global view. The read API (Count, Mean, SecondMoment, the
// model zoo, CovarSnapshot) is unchanged from Server's, and the write
// API is the same Ingestor surface.
type ShardedServer struct {
	ingestAPI
	inner       *shard.Server
	features    []string
	catFeatures []string
	dicts       map[string]*relation.Dict
	mobs        *modelObs
}

// ServeSharded starts a sharded server maintaining the selected
// payload's statistics of the given features over initially empty
// copies of the query's relations, hash-partitioned per ShardOptions.
// Close it when done.
func (q *Query) ServeSharded(features []string, opt ShardOptions) (*ShardedServer, error) {
	strategy, err := serve.ParseStrategy(opt.Strategy)
	if err != nil {
		return nil, err
	}
	if opt.Workers == 0 {
		opt.Workers = q.Workers
	}
	// As in Serve: a pinned Query.Root passes through and disables
	// greedy planning; an empty root lets each shard's planner choose
	// (they agree — all plan from the same source cardinalities).
	if q.Root != "" {
		if _, err := q.rootOrLargest(); err != nil {
			return nil, err
		}
	}
	inner, err := shard.New(q.join, q.Root, features, shard.Config{
		Config: serve.Config{
			Strategy:           strategy,
			BatchSize:          opt.BatchSize,
			FlushInterval:      opt.FlushInterval,
			QueueDepth:         opt.QueueDepth,
			Workers:            opt.Workers,
			MorselSize:         q.MorselSize,
			Payload:            opt.Payload,
			Lifted:             opt.Lifted,
			ReplanThreshold:    opt.ReplanThreshold,
			Logger:             opt.Logger,
			SlowBatchThreshold: opt.SlowBatchThreshold,
		},
		Shards:      opt.Shards,
		PartitionBy: opt.PartitionBy,
	})
	if err != nil {
		return nil, err
	}
	s := &ShardedServer{
		ingestAPI:   ingestAPI{sink: inner},
		inner:       inner,
		features:    inner.Features(),
		catFeatures: inner.CatFeatures(),
		dicts:       q.dicts(inner.CatFeatures()),
	}
	if reg := inner.Metrics(); reg != nil {
		s.mobs = newModelObs(reg)
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *ShardedServer) NumShards() int { return s.inner.NumShards() }

// Features returns the maintained continuous features, in statistics
// order.
func (s *ShardedServer) Features() []string { return s.features }

// CatFeatures returns the maintained categorical features (cofactor
// group-by slots), in slot order; empty unless the shards run
// PayloadCofactor.
func (s *ShardedServer) CatFeatures() []string { return s.catFeatures }

// Payload reports which ring statistics the shards maintain.
func (s *ShardedServer) Payload() Payload { return s.inner.Payload() }

// Metrics returns the tier's shared metric registry: tier-level merge
// and skew series plus every shard's serve/plan series under shard="i"
// labels, and the zoo's model-training telemetry.
func (s *ShardedServer) Metrics() *obs.Registry { return s.inner.Metrics() }

// ShardedServerStats is a point-in-time health view of a sharded
// server: the aggregate totals plus one row per shard.
type ShardedServerStats struct {
	// ServerStats aggregates across shards: Epoch is the sum of shard
	// epochs (a monotone global version), Queued the total queue depth.
	ServerStats
	// Shards holds one stats row per shard, indexed by shard id.
	Shards []ServerStats
}

// Stats reports aggregate and per-shard health: epochs, applied op
// counts, queue depths, and partition cardinalities.
func (s *ShardedServer) Stats() ShardedServerStats {
	rows := s.inner.Stats()
	workers := s.inner.Workers()
	out := ShardedServerStats{Shards: make([]ServerStats, len(rows))}
	out.Workers = workers
	for i, r := range rows {
		out.Shards[i] = ServerStats{
			Epoch:     r.Epoch,
			Inserts:   r.Inserts,
			Deletes:   r.Deletes,
			Queued:    r.Queued,
			Count:     r.Count,
			Workers:   workers,
			Root:      r.Root,
			PlanDepth: r.PlanDepth,
			PlanWidth: r.PlanWidth,
			Drift:     r.Drift,
			Replans:   r.Replans,
		}
		out.Epoch += r.Epoch
		out.Inserts += r.Inserts
		out.Deletes += r.Deletes
		out.Queued += r.Queued
		out.Count += r.Count
		// The aggregate plan row: shards plan from the same inputs, so
		// shard 0's root stands for the tier; drift reports the worst
		// shard and replans the tier-wide total.
		if i == 0 {
			out.Root = r.Root
			out.PlanDepth = r.PlanDepth
			out.PlanWidth = r.PlanWidth
		}
		if r.Drift > out.Drift {
			out.Drift = r.Drift
		}
		out.Replans += r.Replans
	}
	return out
}

// Replan re-plans the tier globally: the per-shard live cardinalities
// are summed, one greedy root is chosen from the totals, and every
// shard rebuilds to it concurrently — each behind its own writer, so
// ingest and merged reads continue throughout and no reader observes a
// mixed state (see Server.Replan for the single-server semantics).
func (s *ShardedServer) Replan() error { return s.inner.Replan() }

// QueueLen totals the per-shard queue depths. QueueLen()==0 with
// quiescent producers means the merged snapshot is current — the same
// invariant Server.Stats documents, preserved across the merge.
func (s *ShardedServer) QueueLen() int { return s.inner.QueueLen() }

// Count returns SUM(1) over the join at the current merged view.
func (s *ShardedServer) Count() float64 { return s.inner.Snapshot().Count() }

// Mean returns the mean of a maintained feature at the current merged
// view (ErrEmptySnapshot while the join is empty — never NaN).
func (s *ShardedServer) Mean(attr string) (float64, error) {
	return s.CovarSnapshot().Mean(attr)
}

// SecondMoment returns SUM(a·b) at the current merged view.
func (s *ShardedServer) SecondMoment(a, b string) (float64, error) {
	return s.CovarSnapshot().SecondMoment(a, b)
}

// TrainLinReg trains a ridge linear regression of the response on the
// remaining maintained features from the current merged statistics —
// the per-shard elements fold with ring addition before training, so
// the model is exactly the one a single unsharded server would produce.
func (s *ShardedServer) TrainLinReg(response string, lambda float64) (*LinearRegression, error) {
	return s.CovarSnapshot().TrainLinReg(response, lambda)
}

// CovarSnapshot freezes the current merged view: an immutable fold of
// the per-shard epoch snapshots on which any number of reads and
// trainings can run while ingest continues on every shard. It satisfies
// the same ServerSnapshot API as an unsharded server's snapshots; its
// Epoch is the sum of the shard epochs.
func (s *ShardedServer) CovarSnapshot() *ServerSnapshot {
	m := s.inner.Snapshot()
	return &ServerSnapshot{
		snap: &serve.Snapshot{
			Epoch:    m.Epoch,
			Inserts:  m.Inserts,
			Deletes:  m.Deletes,
			Stats:    m.Stats,
			Lifted:   m.Lifted,
			Cofactor: m.Cofactor,
		},
		features:    s.features,
		catFeatures: s.catFeatures,
		dicts:       s.dicts,
		obs:         s.mobs,
	}
}
