package borg

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// buildToyDB creates a two-relation schema with a planted linear signal:
// units = 3 - 0.5*price + cityEffect + noise-free.
func buildToyDB(t *testing.T) (*Database, *Relation, *Relation) {
	t.Helper()
	db := NewDatabase()
	sales := db.AddRelation("Sales", Cat("item"), Cat("city"), Num("units"))
	items := db.AddRelation("Items", Cat("item"), Num("price"))
	prices := map[string]float64{"patty": 6, "onion": 2, "bun": 2, "sausage": 4}
	for name, p := range prices {
		if err := items.Append(name, p); err != nil {
			t.Fatal(err)
		}
	}
	cityEffect := map[string]float64{"zurich": 1, "oxford": -1}
	i := 0
	for item, p := range prices {
		for city, eff := range cityEffect {
			units := 3 - 0.5*p + eff
			if err := sales.Append(item, city, units); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	return db, sales, items
}

func TestFacadeLinearRegression(t *testing.T) {
	db, _, _ := buildToyDB(t)
	q, err := db.Query("Sales", "Items")
	if err != nil {
		t.Fatal(err)
	}
	m, err := q.LinearRegression(Features{
		Continuous:  []string{"price"},
		Categorical: []string{"city"},
	}, "units", 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	coef, err := m.Coefficient("price")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef+0.5) > 0.05 {
		t.Fatalf("price coefficient = %v, want ≈ -0.5", coef)
	}
	zur, err := m.CategoryCoefficient(q, "city", "zurich")
	if err != nil {
		t.Fatal(err)
	}
	oxf, err := m.CategoryCoefficient(q, "city", "oxford")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((zur-oxf)-2) > 0.05 {
		t.Fatalf("city effect difference = %v, want ≈ 2", zur-oxf)
	}
	rmse, err := m.TrainingRMSE(q)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.01 {
		t.Fatalf("noise-free fit has RMSE %v", rmse)
	}
	// Retrain on a subset without data access.
	m2, err := m.Retrain(Features{Continuous: []string{"price"}}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Coefficient("price"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Coefficient("ghost"); err == nil {
		t.Fatal("unknown coefficient accepted")
	}
	if _, err := m.CategoryCoefficient(q, "city", "nowhere"); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func TestFacadeAppendErrors(t *testing.T) {
	db := NewDatabase()
	r := db.AddRelation("R", Cat("k"), Num("x"))
	if err := r.Append("a"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := r.Append(1.0, 2.0); err == nil {
		t.Fatal("float into categorical accepted")
	}
	if err := r.Append("a", "b"); err == nil {
		t.Fatal("string into continuous accepted")
	}
	if err := r.Append("a", struct{}{}); err == nil {
		t.Fatal("unsupported type accepted")
	}
	if err := r.Append("a", 2); err != nil {
		t.Fatalf("int into continuous rejected: %v", err)
	}
	if r.Rows() != 1 || r.Name() != "R" {
		t.Fatal("accessors broken")
	}
}

func TestFacadeQueryErrors(t *testing.T) {
	db := NewDatabase()
	db.AddRelation("A", Cat("a"), Cat("b"))
	db.AddRelation("B", Cat("b"), Cat("c"))
	db.AddRelation("C", Cat("c"), Cat("a"))
	if _, err := db.Query("A", "Ghost"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := db.Query(); err == nil {
		// All three relations form a cyclic join.
		t.Fatal("cyclic join accepted")
	}
	if _, err := NewDatabase().Query(); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestFacadeCovariance(t *testing.T) {
	db, _, _ := buildToyDB(t)
	q, err := db.Query()
	if err != nil {
		t.Fatal(err)
	}
	c, err := q.Covariance(Features{Continuous: []string{"price"}}, "units")
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 8 {
		t.Fatalf("Count = %v, want 8", c.Count())
	}
	mean, err := c.Mean("price")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-3.5) > 1e-9 {
		t.Fatalf("mean price = %v, want 3.5", mean)
	}
	if _, err := c.Mean("ghost"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := c.SecondMoment("price", "price"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDecisionTree(t *testing.T) {
	db, _, _ := buildToyDB(t)
	q, err := db.Query()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := q.DecisionTree(Features{
		Continuous:  []string{"price"},
		Categorical: []string{"city"},
	}, "units", TreeOptions{MaxDepth: 3, MinRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() == 0 {
		t.Fatal("no nodes evaluated")
	}
	rmse, err := tree.TrainingRMSE(q)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1.5 {
		t.Fatalf("tree RMSE %v too high", rmse)
	}
	if tree.Depth() > 3 {
		t.Fatalf("depth %d exceeds max", tree.Depth())
	}
}

func TestFacadeKMeansAndChowLiu(t *testing.T) {
	ds, err := GenerateDataset("retailer", 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ds.KMeans([]string{"prize", "maxtemp"}, ds.GridAttr, 3, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Centers) != 3 || cl.Coreset == 0 {
		t.Fatalf("clustering malformed: %+v", cl)
	}
	edges, err := ds.ChowLiu(ds.Feats.Categorical[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("Chow-Liu over 3 attributes has %d edges", len(edges))
	}
}

func TestFacadeStreamingCovariance(t *testing.T) {
	db, _, _ := buildToyDB(t)
	q, err := db.Query()
	if err != nil {
		t.Fatal(err)
	}
	st, err := q.StreamCovariance([]string{"units", "price"})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("Items", "patty", 6.0); err != nil {
		t.Fatal(err)
	}
	if st.Count() != 0 {
		t.Fatal("count before any sale")
	}
	if err := st.Insert("Sales", "patty", "zurich", 1.0); err != nil {
		t.Fatal(err)
	}
	if st.Count() != 1 {
		t.Fatalf("count = %v, want 1", st.Count())
	}
	mean, err := st.Mean("price")
	if err != nil {
		t.Fatal(err)
	}
	if mean != 6 {
		t.Fatalf("mean price = %v, want 6", mean)
	}
	m, err := st.SecondMoment("units", "price")
	if err != nil {
		t.Fatal(err)
	}
	if m != 6 {
		t.Fatalf("SUM(units*price) = %v, want 6", m)
	}
	if err := st.Insert("Ghost"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := st.Mean("ghost"); err == nil {
		t.Fatal("unknown feature accepted")
	}
}

func TestGenerateDataset(t *testing.T) {
	for _, name := range []string{"retailer", "favorita", "yelp", "tpcds"} {
		ds, err := GenerateDataset(name, 1, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Database().Relation(ds.Root) == nil {
			t.Fatalf("%s: root relation missing", name)
		}
		if len(ds.Feats.Continuous) == 0 || ds.Response == "" {
			t.Fatalf("%s: metadata incomplete", name)
		}
	}
	if _, err := GenerateDataset("nope", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDatasetEndToEnd(t *testing.T) {
	ds, err := GenerateDataset("yelp", 3, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ds.LinearRegression(ds.Feats, ds.Response, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := m.TrainingRMSE(ds.Query)
	if err != nil {
		t.Fatal(err)
	}
	// The Yelp response (stars) has a planted dependence on user and
	// business averages: the model must beat the trivial predictor.
	cov, err := ds.Covariance(Features{}, ds.Response)
	if err != nil {
		t.Fatal(err)
	}
	std := math.Sqrt(cov.sigmaYtY() - cov.sigmaMeanY()*cov.sigmaMeanY())
	if rmse > 0.9*std {
		t.Fatalf("RMSE %v vs response std %v: no signal", rmse, std)
	}
}

// Unexported helpers for the test above.
func (c *Covariance) sigmaYtY() float64   { return c.sigma.YtY }
func (c *Covariance) sigmaMeanY() float64 { return c.sigma.XtY[0] }

func TestFieldHelpers(t *testing.T) {
	if Num("x").Categorical || !Cat("g").Categorical {
		t.Fatal("field helpers broken")
	}
	if !strings.HasPrefix(Cat("g").Name, "g") {
		t.Fatal("name lost")
	}
}

func TestCoerceRowNumericWidening(t *testing.T) {
	db := NewDatabase()
	r := db.AddRelation("R", Cat("k"), Num("x"))
	// Every common Go numeric type lands in a continuous attribute.
	for i, v := range []any{
		float64(1), float32(2.5), int(3), int64(4), int32(5), int16(6), int8(7),
		uint(8), uint64(9), uint32(10), uint16(11), uint8(12),
	} {
		if err := r.Append(fmt.Sprintf("k%d", i), v); err != nil {
			t.Fatalf("%T into continuous rejected: %v", v, err)
		}
	}
	if r.Rows() != 12 {
		t.Fatalf("Rows = %d, want 12", r.Rows())
	}

	// The error for a numeric value in a categorical slot names the
	// actual offending Go type and the expected kind — not the
	// misleading old "is categorical, got float".
	err := r.Append(int64(9), 1.0)
	if err == nil {
		t.Fatal("int64 into categorical accepted")
	}
	for _, frag := range []string{"int64", "categorical", "string"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
	err = r.Append("a", "b")
	if err == nil {
		t.Fatal("string into continuous accepted")
	}
	for _, frag := range []string{"string", "continuous", "number"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
	err = r.Append("a", struct{}{})
	if err == nil {
		t.Fatal("struct accepted")
	}
	if !strings.Contains(err.Error(), "struct {}") || !strings.Contains(err.Error(), "number") {
		t.Fatalf("unsupported-type error %q does not name the type and expected kind", err)
	}
}

func TestCoerceRowRejectsNonFinite(t *testing.T) {
	db := NewDatabase()
	r := db.AddRelation("R", Cat("k"), Num("x"))
	for _, v := range []any{math.NaN(), math.Inf(1), math.Inf(-1), float32(float64(math.Inf(1)))} {
		err := r.Append("a", v)
		if err == nil {
			t.Fatalf("non-finite %v accepted", v)
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("error %q does not say non-finite", err)
		}
	}
	if r.Rows() != 0 {
		t.Fatalf("Rows = %d after rejected appends, want 0", r.Rows())
	}
}
