// Relational k-means (Rk-means, Section 3.3): cluster the tuples of a
// feature-extraction join through a grid coreset computed as one
// aggregate batch — Lloyd's algorithm never sees a single join tuple.
package main

import (
	"fmt"
	"log"

	"borg"
)

func main() {
	ds, err := borg.GenerateDataset("tpcds", 2020, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	dims := []string{"iprice", "quantity"}
	cl, err := ds.KMeans(dims, ds.GridAttr, 4, 30, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered the %s join in the space %v\n", ds.Name, dims)
	fmt.Printf("coreset: %d weighted cells (grid attribute %q) — independent of join size\n",
		cl.Coreset, ds.GridAttr)
	for i, c := range cl.Centers {
		fmt.Printf("  center %d: (%.1f, %.1f)\n", i, c[0], c[1])
	}
	fmt.Printf("weighted objective: %.1f\n", cl.Objective)

	// Dependency structure of the categorical attributes, from the same
	// aggregate machinery (Chow–Liu over pairwise mutual information).
	edges, err := ds.ChowLiu(ds.Feats.Categorical)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Chow–Liu dependency tree of the categorical attributes:")
	for _, e := range edges {
		fmt.Printf("  %s — %s (MI %.4f nats)\n", e.A, e.B, e.MI)
	}
}
