// Decision trees over joins: every CART node evaluates one aggregate
// batch (Section 2.2) through LMFAO; the data matrix never exists.
package main

import (
	"fmt"
	"log"

	"borg"
)

func main() {
	ds, err := borg.GenerateDataset("favorita", 2020, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: predicting %s over a %d-relation join\n",
		ds.Name, ds.Response, 6)

	tree, err := ds.DecisionTree(ds.Feats, ds.Response, borg.TreeOptions{
		MaxDepth:      3,
		MinRows:       50,
		ThresholdsPer: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	rmse, err := tree.TrainingRMSE(ds.Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained a depth-%d tree; %d node batches evaluated; RMSE %.3f\n",
		tree.Depth(), tree.Nodes(), rmse)
	fmt.Println("each node cost one LMFAO batch over the base relations;")
	fmt.Println("candidate splits for all features were scored from shared scans")
}
