// Retailer forecasting: the paper's running scenario (Figures 2–3).
// Generates the synthetic Retailer database — Inventory joined with
// Item, Stores, Demographics, and Weather — and trains an inventory-
// units regression over all features, then retrains on a feature subset
// in milliseconds by reusing the covariance matrix (Section 1.5).
package main

import (
	"fmt"
	"log"
	"time"

	"borg"
)

func main() {
	ds, err := borg.GenerateDataset("retailer", 2020, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: fact table %d rows\n",
		ds.Name, ds.Database().Relation(ds.Root).Rows())

	start := time.Now()
	model, err := ds.LinearRegression(ds.Feats, ds.Response, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	trainTime := time.Since(start)

	rmse, err := model.TrainingRMSE(ds.Query)
	if err != nil {
		log.Fatal(err)
	}
	prize, _ := model.Coefficient("prize")
	maxtemp, _ := model.Coefficient("maxtemp")
	fmt.Printf("full model (%d cont + %d cat features): RMSE %.3f, trained in %v\n",
		len(ds.Feats.Continuous), len(ds.Feats.Categorical), rmse, trainTime.Round(time.Millisecond))
	fmt.Printf("  prize coefficient %+.4f (planted negative), maxtemp %+.4f (planted positive)\n",
		prize, maxtemp)

	// Model selection: retrain on subsets without touching the data.
	start = time.Now()
	for _, subset := range [][]string{
		{"prize"},
		{"prize", "maxtemp"},
		{"prize", "maxtemp", "sellarea"},
	} {
		sub, err := model.Retrain(borg.Features{Continuous: subset}, 1e-3)
		if err != nil {
			log.Fatal(err)
		}
		c, _ := sub.Coefficient("prize")
		fmt.Printf("  subset %v: prize %+.4f\n", subset, c)
	}
	fmt.Printf("3 subset models retrained from the same moments in %v — no data pass\n",
		time.Since(start).Round(time.Microsecond))
}
