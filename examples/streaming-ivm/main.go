// Streaming maintenance as a service: borg.Server keeps the covariance
// matrix of a feature-extraction join fresh under live inserts,
// corrections (updates), and expirations (deletes) with F-IVM
// (Section 5.2, Figure 4 right) while serving snapshot-consistent
// statistics — and freshly trained models — to concurrent readers.
// Ops flow through a batching queue applied by one writer goroutine;
// every read is one atomic snapshot load that never blocks the writer.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"borg"
)

func main() {
	db := borg.NewDatabase()
	db.AddRelation("Sales", borg.Cat("item"), borg.Cat("store"), borg.Num("units"))
	db.AddRelation("Items", borg.Cat("item"), borg.Num("price"))
	db.AddRelation("Stores", borg.Cat("store"), borg.Num("area"))

	q, err := db.Query()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := q.Serve([]string{"units", "price", "area"}, borg.ServerOptions{
		Strategy:      "fivm", // one ring-valued view hierarchy
		BatchSize:     32,     // snapshots amortize over up to 32 inserts
		FlushInterval: time.Millisecond,
		// The lifted degree-2 ring also maintains degree-≤4 moments, which
		// is what degree-2 polynomial regression trains from.
		Payload: borg.PayloadPoly2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Dimension tuples may arrive before or after the facts referencing
	// them; F-IVM credits waiting facts retroactively.
	must(srv.Insert("Sales", "patty", "s1", 3)) // no partners yet
	must(srv.Insert("Items", "patty", 6.0))
	must(srv.Insert("Stores", "s1", 120.0))

	// Many clients can stream concurrently: the server's ingest queue is
	// a multi-producer channel applied by a single writer goroutine.
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				must(srv.Insert("Sales", "patty", "s1", c+i))
			}
		}(c)
	}
	wg.Wait()
	must(srv.Insert("Items", "bun", 2.0))
	must(srv.Insert("Sales", "bun", "s1", 10))

	// Corrections and expirations are first-class: an Update retracts
	// the old tuple and inserts its replacement back to back (no
	// snapshot ever shows neither or both), and a Delete retracts one
	// equal-valued tuple — the F-IVM views shrink by propagating the
	// same ring element negated.
	must(srv.Update("Sales",
		[]any{"bun", "s1", 10},  // the mis-keyed original ...
		[]any{"bun", "s1", 12})) // ... corrected to 12 units
	must(srv.Delete("Sales", "patty", "s1", 3)) // expired: retracted by value

	// Flush is a write barrier: everything enqueued above is now applied
	// and published.
	must(srv.Flush())
	st := srv.Stats()
	fmt.Printf("after churn: %d inserts, %d deletes applied, queue empty=%v\n",
		st.Inserts, st.Deletes, st.Queued == 0)

	// CovarSnapshot freezes one epoch: every read below observes the
	// same consistent state, while new inserts could keep streaming.
	snap := srv.CovarSnapshot()
	meanPrice, _ := snap.Mean("price")
	upMoment, _ := snap.SecondMoment("units", "price")
	fmt.Printf("epoch %d: count=%v  mean(price)=%.2f  SUM(units·price)=%.1f\n",
		snap.Epoch(), snap.Count(), meanPrice, upMoment)

	// A model trains on the frozen snapshot's statistics alone — no data
	// access, no interruption of the write path.
	model, err := snap.TrainLinReg("units", 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	coefPrice, _ := model.Coefficient("price")
	fmt.Printf("fresh model at epoch %d: units ~ %.3f + %.3f*price + ...\n",
		snap.Epoch(), model.Intercept(), coefPrice)

	// The same frozen epoch trains the whole model zoo — one aggregate
	// batch, many models. PCA consumes the covariance triple alone:
	pca, err := snap.TrainPCA(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCA at epoch %d: top eigenvalue %.2f, axis ~ [%.2f %.2f %.2f]\n",
		pca.Epoch, pca.Eigenvalues[0],
		pca.Components[0][0], pca.Components[0][1], pca.Components[0][2])

	// Degree-2 polynomial regression needs moments beyond the covariance
	// ring; the lifted degree-2 ring (PayloadPoly2 above) maintains them
	// incrementally through the same propagation machinery.
	poly, err := snap.TrainPolyReg("units", 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	pp, _ := poly.PairCoefficient("price", "price")
	fmt.Printf("polyreg at epoch %d: units ~ %.3f + ... + %.4f*price² + ...\n",
		poly.Epoch, poly.Intercept(), pp)

	// Rk-means-style seeding: cluster seeds from the ring statistics.
	seeds, err := snap.KMeansSeeds(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means seeds at epoch %d: %d centers around the mean %v\n",
		seeds.Epoch, len(seeds.Centers), seeds.Centers[0])

	// A join churned to EMPTY trains nothing: the typed error is the
	// contract (no NaN models, ever).
	if _, err := emptySnapshotDemo(q); err != nil {
		log.Fatal(err)
	}

	fmt.Println("every insert updated ONE ring-valued view hierarchy —")
	fmt.Println("all covariance and degree-4 aggregates were maintained simultaneously")

	categorical()
	sharded()
}

// categorical is the mixed continuous/categorical step: with the
// cofactor payload the server maintains the covariance statistics PER
// GROUP of categorical values — the sufficient statistics of one-hot
// regression, Chow–Liu dependency trees, categorical decision trees,
// and LS-SVMs — and the whole zoo trains from live epochs.
func categorical() {
	db := borg.NewDatabase()
	db.AddRelation("Sales", borg.Cat("item"), borg.Cat("store"), borg.Num("units"))
	db.AddRelation("Items", borg.Cat("item"), borg.Num("price"))
	db.AddRelation("Stores", borg.Cat("store"), borg.Num("area"))
	q, err := db.Query()
	if err != nil {
		log.Fatal(err)
	}
	// Categorical features ("item", "store") join the feature list; they
	// require the cofactor payload, and construction says so if asked
	// without it.
	srv, err := q.Serve([]string{"units", "price", "area", "item", "store"},
		borg.ServerOptions{Payload: borg.PayloadCofactor})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	for s := 0; s < 2; s++ {
		store := fmt.Sprintf("s%d", s+1)
		must(srv.Insert("Stores", store, 100.0+float64(40*s)))
		for i, item := range []string{"patty", "bun", "onion"} {
			must(srv.Insert("Items", item, 2.0+float64(2*i)))
			for n := 0; n < 3; n++ {
				must(srv.Insert("Sales", item, store, 2+i+2*s+n))
			}
		}
	}
	must(srv.Flush())

	// One-hot ridge regression: the categorical groups become indicator
	// blocks assembled from the cofactor maps — no design matrix is ever
	// materialized. Prediction takes values AND category strings.
	lr, err := srv.TrainLinRegGD("units", 1e-2, borg.GDOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := lr.PredictCat(
		map[string]float64{"price": 4, "area": 120},
		map[string]string{"item": "bun", "store": "s1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncategorical zoo at epoch %d: one-hot units(bun@s1) ~ %.2f\n",
		srv.CovarSnapshot().Epoch(), pred)

	// Chow–Liu reads pairwise co-occurrence counts off the group keys.
	edges, err := srv.TrainChowLiu()
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range edges {
		fmt.Printf("dependency tree: %s — %s (MI %.3f)\n", e.A, e.B, e.MI)
	}

	// A categorical regression tree scores every split from the
	// group-restricted (count, sum, sum²) triples of ONE snapshot.
	tree, err := srv.TrainCTree("units", borg.TreeOptions{MaxDepth: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ctree: %d nodes, depth %d — trained from map lookups, no data pass\n",
		tree.Nodes(), tree.Depth())

	// LS-SVM on the same one-hot moments; Classify returns ±1.
	svm, err := srv.TrainSVM("units", 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	class, err := svm.Classify(
		map[string]float64{"price": 4, "area": 120},
		map[string]string{"item": "bun", "store": "s1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ls-svm: class(bun@s1) = %+.0f\n", class)

	// A kind whose payload the server does not maintain refuses with the
	// typed ErrPayloadNotMaintained — 409 on the HTTP surface, never a
	// silently wrong model.
	plain, err := q.Serve([]string{"units", "price", "area"}, borg.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.TrainChowLiu(); errors.Is(err, borg.ErrPayloadNotMaintained) {
		fmt.Println("covar-payload server: TrainChowLiu correctly refused (ErrPayloadNotMaintained)")
	} else {
		log.Fatal("expected ErrPayloadNotMaintained from a covar-payload server")
	}
}

// emptySnapshotDemo shows the degenerate-snapshot contract: every
// trainer on an empty join returns borg.ErrEmptySnapshot.
func emptySnapshotDemo(q *borg.Query) (string, error) {
	empty, err := q.Serve([]string{"units", "price", "area"}, borg.ServerOptions{})
	if err != nil {
		return "", err
	}
	defer empty.Close()
	if _, err := empty.TrainPCA(2); errors.Is(err, borg.ErrEmptySnapshot) {
		fmt.Println("empty join: TrainPCA correctly refused with ErrEmptySnapshot")
		return "ok", nil
	}
	return "", fmt.Errorf("expected ErrEmptySnapshot on an empty join")
}

// sharded is the horizontally scaled variant: the same serving API over
// N hash-partitioned shards. The covariance statistics live in a
// commutative ring, so per-shard triples merge EXACTLY under ring
// addition — the merged model equals the unsharded one. The one schema
// requirement: the partition attribute ("store" here) must appear in
// every relation of the join, so equi-join partners co-locate.
func sharded() {
	db := borg.NewDatabase()
	db.AddRelation("Sales", borg.Cat("store"), borg.Cat("item"), borg.Num("units"))
	db.AddRelation("Catalog", borg.Cat("store"), borg.Cat("item"), borg.Num("price"))
	db.AddRelation("Stores", borg.Cat("store"), borg.Num("area"))

	q, err := db.Query()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := q.ServeSharded([]string{"units", "price", "area"}, borg.ShardOptions{
		ServerOptions: borg.ServerOptions{Strategy: "fivm", BatchSize: 16},
		Shards:        3,       // three independent single-writer serving stacks
		PartitionBy:   "store", // tuples route by hash(store)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// One producer per tenant: each store's dimension and fact tuples
	// hash to one shard, so ingest parallelism scales with the shard
	// count while every shard keeps single-writer simplicity.
	var wg sync.WaitGroup
	for s := 0; s < 6; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			store := fmt.Sprintf("store%d", s)
			must(srv.Insert("Stores", store, 100.0+float64(10*s)))
			for i := 0; i < 4; i++ {
				item := fmt.Sprintf("item%d", i)
				must(srv.Insert("Catalog", store, item, 2.0+float64(i)))
				must(srv.Insert("Sales", store, item, 3+s+i))
			}
		}(s)
	}
	wg.Wait()

	// Flush is now a two-phase GLOBAL barrier: all shard barriers
	// enqueue concurrently, then all acknowledgments are collected.
	must(srv.Flush())
	st := srv.Stats()
	fmt.Printf("\nsharded (%d shards by store): count=%v, %d inserts, queue empty=%v\n",
		srv.NumShards(), st.Count, st.Inserts, st.Queued == 0)
	for _, row := range st.Shards {
		fmt.Printf("  shard carries count=%v (epoch %d)\n", row.Count, row.Epoch)
	}

	// A merged read folds the per-shard snapshots with ring addition;
	// training sees exactly the statistics an unsharded server would.
	shardModel, err := srv.TrainLinReg("units", 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	coefPrice, _ := shardModel.Coefficient("price")
	fmt.Printf("merged model: units ~ %.3f + %.3f*price + ... (trained on ring-merged stats)\n",
		shardModel.Intercept(), coefPrice)
}
