// Streaming maintenance: keep the covariance matrix of a feature-
// extraction join fresh under live inserts with F-IVM (Section 5.2,
// Figure 4 right) — the model can be refreshed after every bulk of
// inserts at millisecond cost instead of daily retraining.
package main

import (
	"fmt"
	"log"

	"borg"
)

func main() {
	db := borg.NewDatabase()
	db.AddRelation("Sales", borg.Cat("item"), borg.Cat("store"), borg.Num("units"))
	db.AddRelation("Items", borg.Cat("item"), borg.Num("price"))
	db.AddRelation("Stores", borg.Cat("store"), borg.Num("area"))

	q, err := db.Query()
	if err != nil {
		log.Fatal(err)
	}
	stream, err := q.StreamCovariance([]string{"units", "price", "area"})
	if err != nil {
		log.Fatal(err)
	}

	// Dimension tuples may arrive before or after the facts referencing
	// them; F-IVM credits waiting facts retroactively.
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(stream.Insert("Sales", "patty", "s1", 3.0)) // no partners yet
	fmt.Printf("after 1 dangling sale: count=%v\n", stream.Count())

	must(stream.Insert("Items", "patty", 6.0))
	must(stream.Insert("Stores", "s1", 120.0))
	fmt.Printf("after its partners arrive: count=%v\n", stream.Count())

	for i := 0; i < 5; i++ {
		must(stream.Insert("Sales", "patty", "s1", float64(i)))
	}
	must(stream.Insert("Items", "bun", 2.0))
	must(stream.Insert("Sales", "bun", "s1", 10.0))

	count := stream.Count()
	meanPrice, _ := stream.Mean("price")
	upMoment, _ := stream.SecondMoment("units", "price")
	fmt.Printf("live statistics: count=%v  mean(price)=%.2f  SUM(units·price)=%.1f\n",
		count, meanPrice, upMoment)
	fmt.Println("every insert updated ONE ring-valued view hierarchy —")
	fmt.Println("all covariance aggregates were maintained simultaneously")
}
