// The worked example of the paper's Section 5.1 (Figures 7–10): the
// Orders/Dish/Items database, its factorized join, and aggregates
// computed in one pass over the factorization under different rings.
package main

import (
	"fmt"
	"log"

	"borg/internal/factor"
	"borg/internal/plan"
	"borg/internal/query"
	"borg/internal/ring"
	"borg/internal/testdb"
)

func main() {
	_, j := testdb.Figure7()
	p, err := plan.New(j, plan.Options{PinnedRoot: "Orders", Static: true})
	if err != nil {
		log.Fatal(err)
	}
	vo := p.VarOrder
	fmt.Println("variable order (Figure 8 left; {..} = ancestors the subtree depends on):")
	fmt.Print(vo)

	f, err := factor.Build(j, vo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflat join: %d tuples × %d attributes = %d values\n",
		f.TupleCount(), len(j.Attrs()), f.FlatValueCount())
	fmt.Printf("factorized join: %d values (%.1fx smaller), %d cached subtrees shared\n",
		f.ValueCount(), f.CompressionRatio(), f.SharedNodeCount())

	// Figure 9 left: COUNT via the counting ring.
	count := factor.EvalRing[int64](f, ring.Int{}, func(v *query.VarNode, e *factor.Entry) int64 {
		return e.Mult
	})
	fmt.Printf("\nCOUNT(*) over the factorization            = %d (Figure 9 expects 12)\n", count)

	// Figure 9 right: SUM(price) via the float ring.
	sum := factor.EvalRing[float64](f, ring.Float{}, func(v *query.VarNode, e *factor.Entry) float64 {
		if v.Attr == "price" {
			return e.Num * float64(e.Mult)
		}
		return float64(e.Mult)
	})
	fmt.Printf("SUM(price) over the factorization          = %g (20·f(burger)+16·f(hotdog), f≡1 → 36)\n", sum)

	// Figure 10: SUM(1), SUM(price), SUM(price²) simultaneously through
	// the covariance-triple ring — the shared computation of Section 5.2.
	r := ring.CovarRing{N: 1}
	triple := factor.EvalRing[*ring.Covar](f, r, func(v *query.VarNode, e *factor.Entry) *ring.Covar {
		if v.Attr == "price" {
			el := r.Lift([]int{0}, []float64{e.Num})
			for m := int64(1); m < e.Mult; m++ {
				el.AddInPlace(r.Lift([]int{0}, []float64{e.Num}))
			}
			return el
		}
		el := r.One()
		el.Count = float64(e.Mult)
		return el
	})
	fmt.Printf("covariance triple (count, Σprice, Σprice²) = (%g, %g, %g)\n",
		triple.Count, triple.Sum[0], triple.Q[0])
	fmt.Println("\none bottom-up pass, three aggregates: the ring shares their computation")
}
