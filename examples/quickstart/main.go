// Quickstart: build a tiny relational database, join it, and train a
// linear regression model WITHOUT ever materializing the join — the
// structure-aware flow of the paper's Figure 2 (bottom).
package main

import (
	"fmt"
	"log"

	"borg"
)

func main() {
	db := borg.NewDatabase()

	// Two relations joined on `item` (attributes with equal names join).
	sales := db.AddRelation("Sales",
		borg.Cat("item"), borg.Cat("city"), borg.Num("units"))
	items := db.AddRelation("Items",
		borg.Cat("item"), borg.Num("price"))

	for _, row := range []struct {
		item  string
		price float64
	}{
		{"patty", 6}, {"onion", 2}, {"bun", 2}, {"sausage", 4},
	} {
		if err := items.Append(row.item, row.price); err != nil {
			log.Fatal(err)
		}
	}
	// units = 10 - price + city effect (zurich +2, oxford -2)
	for _, item := range []string{"patty", "onion", "bun", "sausage"} {
		price := map[string]float64{"patty": 6, "onion": 2, "bun": 2, "sausage": 4}[item]
		for city, eff := range map[string]float64{"zurich": 2.0, "oxford": -2.0} {
			if err := sales.Append(item, city, 10-price+eff); err != nil {
				log.Fatal(err)
			}
		}
	}

	q, err := db.Query("Sales", "Items")
	if err != nil {
		log.Fatal(err)
	}
	model, err := q.LinearRegression(borg.Features{
		Continuous:  []string{"price"},
		Categorical: []string{"city"},
	}, "units", 1e-6)
	if err != nil {
		log.Fatal(err)
	}

	coef, _ := model.Coefficient("price")
	zurich, _ := model.CategoryCoefficient(q, "city", "zurich")
	oxford, _ := model.CategoryCoefficient(q, "city", "oxford")
	rmse, _ := model.TrainingRMSE(q)
	fmt.Printf("units ≈ %.2f %+.2f·price  (city: zurich %+.2f, oxford %+.2f)\n",
		model.Intercept(), coef, zurich, oxford)
	fmt.Printf("training RMSE: %.4f (signal is noise-free, so ≈ 0)\n", rmse)
	fmt.Println("the join was never materialized: training consumed one aggregate batch")
}
