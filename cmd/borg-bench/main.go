// Command borg-bench regenerates the paper's tables and figures (see
// DESIGN.md, experiments E1–E10).
//
// Usage:
//
//	borg-bench -fig all            # every experiment
//	borg-bench -fig 3 -sf 1.0      # Figure 3 at full laptop scale
//	borg-bench -fig 4l|4r|5|6|compress|ifaq|ineq|reuse
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"borg/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "experiment: 3, 4l, 4r, 5, 6, compress, ifaq, ineq, reuse, exec, serve, shard, models, catzoo, scale, plan, obs, or all (the paper figures; exec, serve, shard, models, catzoo, scale, plan, and obs run individually)")
	sf := flag.Float64("sf", 0.2, "dataset scale factor (1.0 = full laptop-scale run)")
	seed := flag.Uint64("seed", 2020, "random seed for data generation")
	workers := flag.Int("workers", 2, "LMFAO worker goroutines")
	budget := flag.Duration("budget", 5*time.Second, "per-strategy time budget for the IVM experiment")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (supported by -fig exec, serve, shard, models, catzoo, and scale)")
	flag.Parse()

	o := bench.Options{Out: os.Stdout, Seed: *seed, SF: *sf, Workers: *workers, Budget: *budget, JSON: *jsonOut}
	runners := map[string]func(bench.Options) error{
		"3":        bench.Fig3,
		"4l":       bench.Fig4Left,
		"4r":       bench.Fig4Right,
		"5":        bench.Fig5,
		"6":        bench.Fig6,
		"compress": bench.Compression,
		"ifaq":     bench.IFAQStages,
		"ineq":     bench.Ineq,
		"reuse":    bench.Reuse,
		"exec":     bench.ExecBaselineTable,
		"serve":    bench.ServeBenchTable,
		"shard":    bench.ShardBenchTable,
		"models":   bench.ModelsBenchTable,
		"catzoo":   bench.CatZooBenchTable,
		"scale":    bench.ScaleBenchTable,
		"plan":     bench.PlanBenchTable,
		"obs":      bench.ObsBenchTable,
		"all":      bench.All,
	}
	run, ok := runners[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "borg-bench: unknown experiment %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "borg-bench: %v\n", err)
		os.Exit(1)
	}
}
