// Command borg-perfgate is the CI performance-regression gate: it
// compares a fresh `borg-bench -fig exec -json` run against the
// committed baseline (benchmarks/baseline.json) and fails when any
// worker-count cell slowed down beyond the tolerance.
//
// Usage:
//
//	borg-bench -fig exec -json > fresh.json
//	borg-perfgate -baseline benchmarks/baseline.json -fresh fresh.json
//
// The tolerance is deliberately generous — CI runners are noisy and the
// gate exists to catch order-of-magnitude regressions (a serialized hot
// path, an accidental O(n²)), not 10% wobble. Per cell, the fresh best
// time may be at most
//
//	max-ratio × max(1, p_base/p_fresh)
//
// times the baseline best time, where p = min(workers, cpus) is the
// effective parallelism each host could give that cell: a baseline
// recorded on a bigger machine is not held against a smaller runner.
//
// Knobs for noisy runners:
//
//	-max-ratio 2.5            the per-cell tolerance (flag)
//	PERF_GATE_MAX_RATIO=4     environment override, wins over the flag
//	PERF_GATE_SKIP=1          skip the gate entirely (emergency valve)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"borg/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "benchmarks/baseline.json", "committed baseline report")
	freshPath := flag.String("fresh", "", "fresh report to gate (required)")
	maxRatio := flag.Float64("max-ratio", 2.5, "max allowed fresh/baseline slowdown per cell")
	flag.Parse()

	if os.Getenv("PERF_GATE_SKIP") == "1" {
		fmt.Println("perfgate: PERF_GATE_SKIP=1, skipping")
		return
	}
	if env := os.Getenv("PERF_GATE_MAX_RATIO"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fatal(fmt.Errorf("bad PERF_GATE_MAX_RATIO %q: %v", env, err))
		}
		*maxRatio = v
	}
	if *freshPath == "" {
		fatal(fmt.Errorf("-fresh is required"))
	}
	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fatal(err)
	}
	if base.SF != fresh.SF || base.Seed != fresh.Seed || base.Dataset != fresh.Dataset {
		fatal(fmt.Errorf("reports are not comparable: baseline is %s sf=%v seed=%d, fresh is %s sf=%v seed=%d",
			base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed))
	}

	freshByWorkers := make(map[int]bench.ExecBaselineRun, len(fresh.Runs))
	for _, r := range fresh.Runs {
		freshByWorkers[r.Workers] = r
	}
	fmt.Printf("perfgate: baseline %s (%d cpus) vs fresh (%d cpus), tolerance %.2fx\n",
		*baselinePath, base.CPUs, fresh.CPUs, *maxRatio)
	failed := false
	for _, b := range base.Runs {
		f, ok := freshByWorkers[b.Workers]
		if !ok {
			fmt.Printf("  workers=%d  MISSING from fresh report\n", b.Workers)
			failed = true
			continue
		}
		allowed := *maxRatio * parallelismPenalty(b.Workers, base.CPUs, fresh.CPUs)
		ratio := f.BestMS / b.BestMS
		verdict := "ok"
		if ratio > allowed {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("  workers=%d  base %.1f ms  fresh %.1f ms  ratio %.2fx  allowed %.2fx  %s\n",
			b.Workers, b.BestMS, f.BestMS, ratio, allowed, verdict)
	}
	if failed {
		fatal(fmt.Errorf("performance regression beyond %.2fx tolerance (override with PERF_GATE_MAX_RATIO or PERF_GATE_SKIP=1 on known-noisy runners)", *maxRatio))
	}
	fmt.Println("perfgate: pass")
}

// parallelismPenalty is the extra slowdown allowed when the fresh host
// can give a cell less effective parallelism than the baseline host did:
// p = min(workers, cpus) per host, and a cell that had p_base ways of
// running is allowed to take p_base/p_fresh times longer on the smaller
// runner. Never below 1 — bigger runners get no extra slack.
func parallelismPenalty(workers, baseCPUs, freshCPUs int) float64 {
	pBase := min(workers, max(baseCPUs, 1))
	pFresh := min(workers, max(freshCPUs, 1))
	if pFresh >= pBase {
		return 1
	}
	return float64(pBase) / float64(pFresh)
}

func load(path string) (*bench.ExecBaselineReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.ExecBaselineReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Runs) == 0 {
		return nil, fmt.Errorf("%s: no runs recorded", path)
	}
	return &rep, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
	os.Exit(1)
}
