// Command borg-perfgate is the CI performance-regression gate: it
// compares fresh `borg-bench -json` runs against the committed
// baselines under benchmarks/ and fails when any cell slowed down
// beyond the tolerance. Three reports are gated:
//
//   - the exec-runtime baseline (`-fig exec`, per worker-count cell,
//     compared on best wall time),
//   - the serving benchmark (`-fig serve`, per strategy × readers ×
//     insert/delete-mix cell, compared on applied ops/sec — so both
//     insert and retraction throughput are regression-gated), and
//   - the sharded-serving benchmark (`-fig shard`, per strategy ×
//     shard-count × variant × mix cell, compared on applied ops/sec —
//     covering the shard router, the ring-merged read path, and the
//     Shards=1 fast-path devolution), and
//   - the model-zoo benchmark (`-fig models`, per model-kind × strategy
//     cell, compared on snapshot trainings/sec — so a regression in the
//     epoch→model path of any model kind trips the gate), and
//   - the categorical-zoo benchmark (`-fig catzoo`, per kind × strategy
//     × payload cell: cofactor-payload ingest throughput plus
//     snapshot-training rates of the mixed continuous/categorical kinds
//     — one-hot linreg, varying-coefficients polyreg, Chow–Liu,
//     categorical trees, LS-SVM), and
//   - the multi-core ingest benchmark (`-fig scale`, per strategy ×
//     GOMAXPROCS × shard-count × mix cell on applied ops/sec, plus a
//     scaling-efficiency floor: on hosts with 4+ CPUs the best
//     strategy's 1→4 worker speedup must clear a minimum, so a change
//     that re-serializes the morsel-parallel batch path fails even if
//     absolute single-core throughput holds), and
//   - the observability-overhead benchmark (`-fig obs`, instrumented vs
//     uninstrumented ingest on the same stream: the instrumented rate is
//     throughput-gated like every other cell, and the fresh overhead
//     ratio must stay under -max-obs-overhead — default 1.05× — so
//     instrumentation can never quietly tax the hot path).
//
// Usage:
//
//	borg-bench -fig exec -json > exec-fresh.json
//	borg-bench -fig serve -json > serve-fresh.json
//	borg-bench -fig shard -json > shard-fresh.json
//	borg-bench -fig models -json > models-fresh.json
//	borg-bench -fig catzoo -json > catzoo-fresh.json
//	borg-bench -fig scale -json > scale-fresh.json
//	borg-bench -fig obs -json > obs-fresh.json
//	borg-perfgate -baseline benchmarks/baseline.json -fresh exec-fresh.json \
//	              -serve-baseline benchmarks/serve.json -serve-fresh serve-fresh.json \
//	              -shard-baseline benchmarks/shard.json -shard-fresh shard-fresh.json \
//	              -models-baseline benchmarks/models.json -models-fresh models-fresh.json \
//	              -catzoo-baseline benchmarks/catzoo.json -catzoo-fresh catzoo-fresh.json \
//	              -scale-baseline benchmarks/scale.json -scale-fresh scale-fresh.json \
//	              -obs-baseline benchmarks/obs.json -obs-fresh obs-fresh.json
//
// The tolerance is deliberately generous — CI runners are noisy and the
// gate exists to catch order-of-magnitude regressions (a serialized hot
// path, an accidental O(n²)), not 10% wobble. Per cell, the fresh best
// time may be at most
//
//	max-ratio × max(1, p_base/p_fresh)
//
// times the baseline best time, where p = min(workers, cpus) is the
// effective parallelism each host could give that cell.
//
// Reports from hosts with differing CPU counts are refused outright:
// throughput cells measured on different machine shapes are not
// comparable, and silently normalizing them (the old behavior) let real
// regressions hide inside the slack. PERF_GATE_ALLOW_CPU_MISMATCH=1
// restores the normalized comparison for deliberate cross-host runs —
// that is when the p_base/p_fresh penalty above applies.
//
// Knobs for noisy runners:
//
//	-max-ratio 2.5                   the per-cell tolerance (flag)
//	PERF_GATE_MAX_RATIO=4            environment override, wins over the flag
//	PERF_GATE_ALLOW_CPU_MISMATCH=1   compare across CPU counts (normalized)
//	PERF_GATE_MIN_SCALE=1.5          scaling-efficiency floor override
//	PERF_GATE_MAX_OBS_OVERHEAD=1.1   instrumentation-overhead bound override
//	PERF_GATE_SKIP=1                 skip the gate entirely (emergency valve)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"borg/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "benchmarks/baseline.json", "committed exec baseline report")
	freshPath := flag.String("fresh", "", "fresh exec report to gate")
	serveBaselinePath := flag.String("serve-baseline", "benchmarks/serve.json", "committed serving baseline report")
	serveFreshPath := flag.String("serve-fresh", "", "fresh serving report to gate")
	shardBaselinePath := flag.String("shard-baseline", "benchmarks/shard.json", "committed sharded-serving baseline report")
	shardFreshPath := flag.String("shard-fresh", "", "fresh sharded-serving report to gate")
	modelsBaselinePath := flag.String("models-baseline", "benchmarks/models.json", "committed model-zoo baseline report")
	modelsFreshPath := flag.String("models-fresh", "", "fresh model-zoo report to gate")
	catZooBaselinePath := flag.String("catzoo-baseline", "benchmarks/catzoo.json", "committed categorical-zoo baseline report")
	catZooFreshPath := flag.String("catzoo-fresh", "", "fresh categorical-zoo report to gate")
	scaleBaselinePath := flag.String("scale-baseline", "benchmarks/scale.json", "committed multi-core ingest baseline report")
	scaleFreshPath := flag.String("scale-fresh", "", "fresh multi-core ingest report to gate")
	planBaselinePath := flag.String("plan-baseline", "benchmarks/plan.json", "committed planning baseline report")
	planFreshPath := flag.String("plan-fresh", "", "fresh planning report to gate")
	obsBaselinePath := flag.String("obs-baseline", "benchmarks/obs.json", "committed observability-overhead baseline report")
	obsFreshPath := flag.String("obs-fresh", "", "fresh observability-overhead report to gate")
	maxRatio := flag.Float64("max-ratio", 2.5, "max allowed fresh/baseline slowdown per cell")
	minScale := flag.Float64("min-scale", 1.5, "min 1→4 worker speedup of the best strategy (enforced on 4+ CPU hosts)")
	maxObsOverhead := flag.Float64("max-obs-overhead", 1.05, "max allowed instrumented/uninstrumented ingest slowdown in the fresh obs report")
	flag.Parse()

	if os.Getenv("PERF_GATE_SKIP") == "1" {
		fmt.Println("perfgate: PERF_GATE_SKIP=1, skipping")
		return
	}
	if env := os.Getenv("PERF_GATE_MAX_RATIO"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fatal(fmt.Errorf("bad PERF_GATE_MAX_RATIO %q: %v", env, err))
		}
		*maxRatio = v
	}
	if env := os.Getenv("PERF_GATE_MIN_SCALE"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fatal(fmt.Errorf("bad PERF_GATE_MIN_SCALE %q: %v", env, err))
		}
		*minScale = v
	}
	if env := os.Getenv("PERF_GATE_MAX_OBS_OVERHEAD"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fatal(fmt.Errorf("bad PERF_GATE_MAX_OBS_OVERHEAD %q: %v", env, err))
		}
		*maxObsOverhead = v
	}
	if *freshPath == "" && *serveFreshPath == "" && *shardFreshPath == "" && *modelsFreshPath == "" && *catZooFreshPath == "" && *scaleFreshPath == "" && *planFreshPath == "" && *obsFreshPath == "" {
		fatal(fmt.Errorf("at least one of -fresh, -serve-fresh, -shard-fresh, -models-fresh, -catzoo-fresh, -scale-fresh, -plan-fresh, or -obs-fresh is required"))
	}
	failed := false
	if *freshPath != "" {
		failed = gateExec(*baselinePath, *freshPath, *maxRatio) || failed
	}
	if *serveFreshPath != "" {
		failed = gateServe(*serveBaselinePath, *serveFreshPath, *maxRatio) || failed
	}
	if *shardFreshPath != "" {
		failed = gateShard(*shardBaselinePath, *shardFreshPath, *maxRatio) || failed
	}
	if *modelsFreshPath != "" {
		failed = gateModels(*modelsBaselinePath, *modelsFreshPath, *maxRatio) || failed
	}
	if *catZooFreshPath != "" {
		failed = gateCatZoo(*catZooBaselinePath, *catZooFreshPath, *maxRatio) || failed
	}
	if *scaleFreshPath != "" {
		failed = gateScale(*scaleBaselinePath, *scaleFreshPath, *maxRatio, *minScale) || failed
	}
	if *planFreshPath != "" {
		failed = gatePlan(*planBaselinePath, *planFreshPath, *maxRatio) || failed
	}
	if *obsFreshPath != "" {
		failed = gateObs(*obsBaselinePath, *obsFreshPath, *maxRatio, *maxObsOverhead) || failed
	}
	if failed {
		fatal(fmt.Errorf("performance regression beyond %.2fx tolerance (override with PERF_GATE_MAX_RATIO or PERF_GATE_SKIP=1 on known-noisy runners)", *maxRatio))
	}
	fmt.Println("perfgate: pass")
}

// gateExec compares the exec-runtime report per worker-count cell on
// best wall time. Returns true when any cell regressed.
func gateExec(baselinePath, freshPath string, maxRatio float64) bool {
	base, err := loadReport[bench.ExecBaselineReport](baselinePath, func(r *bench.ExecBaselineReport) int { return len(r.Runs) })
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport[bench.ExecBaselineReport](freshPath, func(r *bench.ExecBaselineReport) int { return len(r.Runs) })
	if err != nil {
		fatal(err)
	}
	ensureComparable("exec", base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed)
	cpuGuard("exec", reportCPUs(base.CPUs, base.Env), reportCPUs(fresh.CPUs, fresh.Env))

	freshByWorkers := make(map[int]bench.ExecBaselineRun, len(fresh.Runs))
	for _, r := range fresh.Runs {
		freshByWorkers[r.Workers] = r
	}
	fmt.Printf("perfgate: exec baseline %s (%d cpus) vs fresh (%d cpus), tolerance %.2fx\n",
		baselinePath, base.CPUs, fresh.CPUs, maxRatio)
	failed := false
	for _, b := range base.Runs {
		f, ok := freshByWorkers[b.Workers]
		if !ok {
			fmt.Printf("  workers=%d  MISSING from fresh report\n", b.Workers)
			failed = true
			continue
		}
		allowed := maxRatio * parallelismPenalty(b.Workers, base.CPUs, fresh.CPUs)
		ratio := f.BestMS / b.BestMS
		verdict := "ok"
		if ratio > allowed {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("  workers=%d  base %.1f ms  fresh %.1f ms  ratio %.2fx  allowed %.2fx  %s\n",
			b.Workers, b.BestMS, f.BestMS, ratio, allowed, verdict)
	}
	return failed
}

// throughputCell is one gated cell of an ops/sec-based report: key
// matches baseline and fresh cells, label is the printed name, ops the
// per-cell metric, and clients the concurrent-goroutine load used for
// the parallelism penalty.
type throughputCell struct {
	key     string
	label   string
	ops     float64
	clients int
}

// gateThroughput compares fresh against base per cell on applied
// ops/sec (a cell regresses when base/fresh exceeds the allowed ratio).
// Shared by the serving and sharded-serving gates. Returns true when
// any cell regressed or is missing from the fresh report.
func gateThroughput(kind, baselinePath string, baseCPUs, freshCPUs int, maxRatio float64, base, fresh []throughputCell) bool {
	freshByKey := make(map[string]throughputCell, len(fresh))
	for _, c := range fresh {
		freshByKey[c.key] = c
	}
	width := 0
	for _, b := range base {
		if len(b.label) > width {
			width = len(b.label)
		}
	}
	fmt.Printf("perfgate: %s baseline %s (%d cpus) vs fresh (%d cpus), tolerance %.2fx\n",
		kind, baselinePath, baseCPUs, freshCPUs, maxRatio)
	failed := false
	for _, b := range base {
		f, ok := freshByKey[b.key]
		if !ok {
			fmt.Printf("  %-*s MISSING from fresh report\n", width, b.label)
			failed = true
			continue
		}
		allowed := maxRatio * parallelismPenalty(b.clients, baseCPUs, freshCPUs)
		ratio := b.ops / f.ops
		verdict := "ok"
		if ratio > allowed {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("  %-*s base %.0f ops/s  fresh %.0f ops/s  ratio %.2fx  allowed %.2fx  %s\n",
			width, b.label, b.ops, f.ops, ratio, allowed, verdict)
	}
	return failed
}

// gateServe compares the serving report per strategy × readers × mix
// cell on applied ops/sec — the cell set includes the 90/10
// insert/delete mix, so retraction throughput is gated exactly like
// insert throughput. Returns true when any cell regressed.
func gateServe(baselinePath, freshPath string, maxRatio float64) bool {
	base, err := loadReport[bench.ServeReport](baselinePath, func(r *bench.ServeReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport[bench.ServeReport](freshPath, func(r *bench.ServeReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	ensureComparable("serve", base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed)
	cpuGuard("serve", reportCPUs(base.CPUs, base.Env), reportCPUs(fresh.CPUs, fresh.Env))
	// The cell's client load is writers + readers concurrent goroutines;
	// a host that cannot run them in parallel gets the usual slack.
	cells := func(cs []bench.ServeCell) []throughputCell {
		out := make([]throughputCell, len(cs))
		for i, c := range cs {
			out[i] = throughputCell{
				key:     fmt.Sprintf("%s|%d|%g", c.Strategy, c.Readers, c.DeleteFrac),
				label:   fmt.Sprintf("%s readers=%d del=%.0f%%", c.Strategy, c.Readers, 100*c.DeleteFrac),
				ops:     opsPerSec(c),
				clients: c.Writers + c.Readers,
			}
		}
		return out
	}
	return gateThroughput("serve", baselinePath, base.CPUs, fresh.CPUs, maxRatio, cells(base.Cells), cells(fresh.Cells))
}

// gateShard compares the sharded-serving report per strategy ×
// shard-count × variant × mix cell on applied ops/sec. The cell set
// spans shards 1, 2, and 4 plus the plain-server baseline, so a
// regression in the shard router, the merged read path, or the Shards=1
// fast path all trip the gate. Returns true when any cell regressed.
func gateShard(baselinePath, freshPath string, maxRatio float64) bool {
	base, err := loadReport[bench.ShardReport](baselinePath, func(r *bench.ShardReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport[bench.ShardReport](freshPath, func(r *bench.ShardReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	ensureComparable("shard", base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed)
	cpuGuard("shard", reportCPUs(base.CPUs, base.Env), reportCPUs(fresh.CPUs, fresh.Env))
	// The cell's client load is the producers and readers plus one
	// writer goroutine per shard.
	cells := func(cs []bench.ShardCell) []throughputCell {
		out := make([]throughputCell, len(cs))
		for i, c := range cs {
			out[i] = throughputCell{
				key:     fmt.Sprintf("%s|%d|%s|%g", c.Strategy, c.Shards, c.Variant, c.DeleteFrac),
				label:   fmt.Sprintf("%s shards=%d %s del=%.0f%%", c.Strategy, c.Shards, c.Variant, 100*c.DeleteFrac),
				ops:     c.OpsPerSec,
				clients: c.Writers + c.Readers + c.Shards,
			}
		}
		return out
	}
	return gateThroughput("shard", baselinePath, base.CPUs, fresh.CPUs, maxRatio, cells(base.Cells), cells(fresh.Cells))
}

// gateModels compares the model-zoo report per model-kind × strategy
// cell on snapshot trainings/sec. Training is single-threaded, so no
// parallelism penalty applies (clients = 1). Returns true when any cell
// regressed.
func gateModels(baselinePath, freshPath string, maxRatio float64) bool {
	base, err := loadReport[bench.ModelsReport](baselinePath, func(r *bench.ModelsReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport[bench.ModelsReport](freshPath, func(r *bench.ModelsReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	ensureComparable("models", base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed)
	cpuGuard("models", reportCPUs(base.CPUs, base.Env), reportCPUs(fresh.CPUs, fresh.Env))
	cells := func(cs []bench.ModelCell) []throughputCell {
		out := make([]throughputCell, len(cs))
		for i, c := range cs {
			out[i] = throughputCell{
				key:     fmt.Sprintf("%s|%s", c.Kind, c.Strategy),
				label:   fmt.Sprintf("%s %s", c.Kind, c.Strategy),
				ops:     c.TrainsPerSec,
				clients: 1,
			}
		}
		return out
	}
	return gateThroughput("models", baselinePath, base.CPUs, fresh.CPUs, maxRatio, cells(base.Cells), cells(fresh.Cells))
}

// gateCatZoo compares the categorical-zoo report per kind × strategy ×
// payload cell: the "ingest" cells gate cofactor maintenance throughput
// and the model cells gate snapshot trainings/sec, so both halves of
// the categorical pipeline — statistics production and consumption —
// are regression-gated. Loading and training are single-threaded at the
// cell level (clients = 1). Returns true when any cell regressed.
func gateCatZoo(baselinePath, freshPath string, maxRatio float64) bool {
	base, err := loadReport[bench.CatZooReport](baselinePath, func(r *bench.CatZooReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport[bench.CatZooReport](freshPath, func(r *bench.CatZooReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	ensureComparable("catzoo", base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed)
	cpuGuard("catzoo", reportCPUs(base.CPUs, base.Env), reportCPUs(fresh.CPUs, fresh.Env))
	cells := func(cs []bench.CatZooCell) []throughputCell {
		out := make([]throughputCell, len(cs))
		for i, c := range cs {
			out[i] = throughputCell{
				key:     fmt.Sprintf("%s|%s|%s", c.Kind, c.Strategy, c.Payload),
				label:   fmt.Sprintf("%s %s %s", c.Kind, c.Strategy, c.Payload),
				ops:     c.OpsPerSec,
				clients: 1,
			}
		}
		return out
	}
	return gateThroughput("catzoo", baselinePath, base.CPUs, fresh.CPUs, maxRatio, cells(base.Cells), cells(fresh.Cells))
}

// gatePlan compares the planning report per mode cell (static, greedy,
// replanned) on ingest ops/sec, and additionally asserts the ordering
// claim the planning layer exists for: on the skew-inverted workload,
// the fresh greedy and replanned cells must not fall behind the fresh
// static cell — a planner that stops helping is a regression even if
// every absolute rate held. Returns true when any cell regressed.
func gatePlan(baselinePath, freshPath string, maxRatio float64) bool {
	base, err := loadReport[bench.PlanReport](baselinePath, func(r *bench.PlanReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport[bench.PlanReport](freshPath, func(r *bench.PlanReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	ensureComparable("plan", base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed)
	cpuGuard("plan", reportCPUs(base.CPUs, base.Env), reportCPUs(fresh.CPUs, fresh.Env))
	cells := func(cs []bench.PlanCell) []throughputCell {
		out := make([]throughputCell, len(cs))
		for i, c := range cs {
			out[i] = throughputCell{
				key:     c.Mode,
				label:   fmt.Sprintf("%s (root %s)", c.Mode, c.Root),
				ops:     c.OpsPerSec,
				clients: 2, // two writer clients per cell
			}
		}
		return out
	}
	failed := gateThroughput("plan", baselinePath, base.CPUs, fresh.CPUs, maxRatio, cells(base.Cells), cells(fresh.Cells))
	byMode := make(map[string]bench.PlanCell, len(fresh.Cells))
	for _, c := range fresh.Cells {
		byMode[c.Mode] = c
	}
	static, okS := byMode["static"]
	for _, mode := range []string{"greedy", "replanned"} {
		c, ok := byMode[mode]
		if !ok || !okS {
			continue
		}
		if c.OpsPerSec < static.OpsPerSec {
			fmt.Printf("  ordering: %s %.0f ops/s fell behind static %.0f ops/s on the skew-inverted stream  FAIL\n",
				mode, c.OpsPerSec, static.OpsPerSec)
			failed = true
		} else {
			fmt.Printf("  ordering: %s %.0f ops/s ≥ static %.0f ops/s  ok\n", mode, c.OpsPerSec, static.OpsPerSec)
		}
	}
	return failed
}

// gateObs gates the observability benchmark twice over: the
// instrumented ingest rate must not regress against the committed
// baseline (the usual throughput tolerance), and the fresh report's
// measured overhead ratio — uninstrumented best over instrumented best —
// must stay under maxObsOverhead, so instrumentation that creeps onto
// the hot path (an allocation per op, a lock on the update) fails the
// build even when absolute throughput still clears the noisy-runner
// tolerance. Returns true when either check fails.
func gateObs(baselinePath, freshPath string, maxRatio, maxObsOverhead float64) bool {
	base, err := loadReport[bench.ObsReport](baselinePath, func(r *bench.ObsReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport[bench.ObsReport](freshPath, func(r *bench.ObsReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	ensureComparable("obs", base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed)
	cpuGuard("obs", reportCPUs(base.CPUs, base.Env), reportCPUs(fresh.CPUs, fresh.Env))
	// Two cells per report: each variant's best rep. The two writer
	// clients are the cell's parallel load.
	cells := func(r *bench.ObsReport) []throughputCell {
		return []throughputCell{
			{key: "instrumented", label: "instrumented", ops: r.BestInstrumented, clients: 2},
			{key: "uninstrumented", label: "uninstrumented", ops: r.BestUninstrumented, clients: 2},
		}
	}
	failed := gateThroughput("obs", baselinePath, reportCPUs(base.CPUs, base.Env), reportCPUs(fresh.CPUs, fresh.Env), maxRatio, cells(base), cells(fresh))
	if fresh.OverheadRatio > maxObsOverhead {
		fmt.Printf("  overhead: instrumented ingest %.3fx slower than uninstrumented, bound %.2fx  FAIL\n",
			fresh.OverheadRatio, maxObsOverhead)
		failed = true
	} else {
		fmt.Printf("  overhead: instrumented ingest %.3fx of uninstrumented ≤ %.2fx  ok\n",
			fresh.OverheadRatio, maxObsOverhead)
	}
	return failed
}

// opsPerSec reads a cell's applied-op throughput, falling back to the
// insert rate for reports written before the churn cells existed.
func opsPerSec(c bench.ServeCell) float64 {
	if c.OpsPerSec > 0 {
		return c.OpsPerSec
	}
	return c.InsertsPerSec
}

// gateScale compares the multi-core ingest report per strategy ×
// GOMAXPROCS × shard-count × mix cell on applied ops/sec, then enforces
// the scaling-efficiency floor on the fresh report: on a host with 4+
// CPUs, the best strategy's 1→4 worker speedup (shards=1, insert-only)
// must reach minScale — the check that catches a change re-serializing
// the morsel-parallel batch path without slowing any single cell enough
// to trip the throughput tolerance. Hosts with fewer than 4 CPUs cannot
// exhibit 4-way scaling, so the floor is reported but not enforced
// there. Returns true when any cell regressed or the floor is missed.
func gateScale(baselinePath, freshPath string, maxRatio, minScale float64) bool {
	base, err := loadReport[bench.ScaleReport](baselinePath, func(r *bench.ScaleReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	fresh, err := loadReport[bench.ScaleReport](freshPath, func(r *bench.ScaleReport) int { return len(r.Cells) })
	if err != nil {
		fatal(err)
	}
	ensureComparable("scale", base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed)
	cpuGuard("scale", base.Env.CPUs, fresh.Env.CPUs)
	// The cell's parallel load is the four producers plus one writer and
	// Workers pool goroutines per shard.
	cells := func(cs []bench.ScaleCell) []throughputCell {
		out := make([]throughputCell, len(cs))
		for i, c := range cs {
			out[i] = throughputCell{
				key:     fmt.Sprintf("%s|%d|%d|%g", c.Strategy, c.Procs, c.Shards, c.DeleteFrac),
				label:   fmt.Sprintf("%s procs=%d shards=%d del=%.0f%%", c.Strategy, c.Procs, c.Shards, 100*c.DeleteFrac),
				ops:     c.OpsPerSec,
				clients: 4 + c.Shards*(1+c.Workers),
			}
		}
		return out
	}
	failed := gateThroughput("scale", baselinePath, base.Env.CPUs, fresh.Env.CPUs, maxRatio, cells(base.Cells), cells(fresh.Cells))
	return gateScaleEfficiency(fresh, minScale) || failed
}

// gateScaleEfficiency enforces the 1→4 worker scaling floor recorded in
// a fresh scale report. Returns true when the floor is missed on a host
// that could have met it.
func gateScaleEfficiency(fresh *bench.ScaleReport, minScale float64) bool {
	bestName, best := "", 0.0
	for name, s := range fresh.Speedup1to4 {
		if s > best {
			bestName, best = name, s
		}
	}
	if fresh.Env.CPUs < 4 {
		fmt.Printf("  scaling floor: host has %d cpus, 4-way scaling unobservable — floor %.2fx reported, not enforced (best: %s %.2fx)\n",
			fresh.Env.CPUs, minScale, bestName, best)
		return false
	}
	if best < minScale {
		fmt.Printf("  scaling floor: best 1→4 worker speedup %s %.2fx below floor %.2fx  FAIL\n", bestName, best, minScale)
		return true
	}
	fmt.Printf("  scaling floor: best 1→4 worker speedup %s %.2fx ≥ %.2fx  ok\n", bestName, best, minScale)
	return false
}

// cpuGuard refuses to gate reports recorded on hosts with differing CPU
// counts: throughput measured on different machine shapes is not
// comparable cell for cell, and normalizing the difference away lets
// real regressions hide inside the slack. PERF_GATE_ALLOW_CPU_MISMATCH=1
// overrides for deliberate cross-host comparisons — then the
// parallelismPenalty normalization applies as before. A zero count
// (reports written before the environment was recorded) is not guarded.
func cpuGuard(kind string, baseCPUs, freshCPUs int) {
	if baseCPUs == 0 || freshCPUs == 0 || baseCPUs == freshCPUs {
		return
	}
	if os.Getenv("PERF_GATE_ALLOW_CPU_MISMATCH") == "1" {
		fmt.Printf("perfgate: %s baseline has %d cpus, fresh %d — comparing anyway (PERF_GATE_ALLOW_CPU_MISMATCH=1)\n",
			kind, baseCPUs, freshCPUs)
		return
	}
	fatal(fmt.Errorf("%s reports are not comparable: baseline recorded on %d cpus, fresh on %d — rerun the baseline on this host, or set PERF_GATE_ALLOW_CPU_MISMATCH=1 to compare with parallelism normalization",
		kind, baseCPUs, freshCPUs))
}

// reportCPUs reads a report's recorded CPU count, preferring the full
// environment record over the legacy top-level field.
func reportCPUs(legacy int, env bench.Environment) int {
	if env.CPUs > 0 {
		return env.CPUs
	}
	return legacy
}

// parallelismPenalty is the extra slowdown allowed when the fresh host
// can give a cell less effective parallelism than the baseline host did:
// p = min(workers, cpus) per host, and a cell that had p_base ways of
// running is allowed to take p_base/p_fresh times longer on the smaller
// runner. Never below 1 — bigger runners get no extra slack.
func parallelismPenalty(workers, baseCPUs, freshCPUs int) float64 {
	pBase := min(workers, max(baseCPUs, 1))
	pFresh := min(workers, max(freshCPUs, 1))
	if pFresh >= pBase {
		return 1
	}
	return float64(pBase) / float64(pFresh)
}

// ensureComparable refuses to gate reports generated from different
// datasets, scale factors, or seeds.
func ensureComparable(kind, baseDS string, baseSF float64, baseSeed uint64, freshDS string, freshSF float64, freshSeed uint64) {
	if baseSF != freshSF || baseSeed != freshSeed || baseDS != freshDS {
		fatal(fmt.Errorf("%s reports are not comparable: baseline is %s sf=%v seed=%d, fresh is %s sf=%v seed=%d",
			kind, baseDS, baseSF, baseSeed, freshDS, freshSF, freshSeed))
	}
}

// loadReport reads and decodes one benchmark report, rejecting files
// with no recorded cells (size reports how many a report carries).
func loadReport[T any](path string, size func(*T) int) (*T, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := new(T)
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if size(rep) == 0 {
		return nil, fmt.Errorf("%s: no cells recorded", path)
	}
	return rep, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
	os.Exit(1)
}
