// Command borg-perfgate is the CI performance-regression gate: it
// compares fresh `borg-bench -json` runs against the committed
// baselines under benchmarks/ and fails when any cell slowed down
// beyond the tolerance. Two reports are gated:
//
//   - the exec-runtime baseline (`-fig exec`, per worker-count cell,
//     compared on best wall time), and
//   - the serving benchmark (`-fig serve`, per strategy × readers ×
//     insert/delete-mix cell, compared on applied ops/sec — so both
//     insert and retraction throughput are regression-gated).
//
// Usage:
//
//	borg-bench -fig exec -json > exec-fresh.json
//	borg-bench -fig serve -json > serve-fresh.json
//	borg-perfgate -baseline benchmarks/baseline.json -fresh exec-fresh.json \
//	              -serve-baseline benchmarks/serve.json -serve-fresh serve-fresh.json
//
// The tolerance is deliberately generous — CI runners are noisy and the
// gate exists to catch order-of-magnitude regressions (a serialized hot
// path, an accidental O(n²)), not 10% wobble. Per cell, the fresh best
// time may be at most
//
//	max-ratio × max(1, p_base/p_fresh)
//
// times the baseline best time, where p = min(workers, cpus) is the
// effective parallelism each host could give that cell: a baseline
// recorded on a bigger machine is not held against a smaller runner.
//
// Knobs for noisy runners:
//
//	-max-ratio 2.5            the per-cell tolerance (flag)
//	PERF_GATE_MAX_RATIO=4     environment override, wins over the flag
//	PERF_GATE_SKIP=1          skip the gate entirely (emergency valve)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"borg/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "benchmarks/baseline.json", "committed exec baseline report")
	freshPath := flag.String("fresh", "", "fresh exec report to gate")
	serveBaselinePath := flag.String("serve-baseline", "benchmarks/serve.json", "committed serving baseline report")
	serveFreshPath := flag.String("serve-fresh", "", "fresh serving report to gate")
	maxRatio := flag.Float64("max-ratio", 2.5, "max allowed fresh/baseline slowdown per cell")
	flag.Parse()

	if os.Getenv("PERF_GATE_SKIP") == "1" {
		fmt.Println("perfgate: PERF_GATE_SKIP=1, skipping")
		return
	}
	if env := os.Getenv("PERF_GATE_MAX_RATIO"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fatal(fmt.Errorf("bad PERF_GATE_MAX_RATIO %q: %v", env, err))
		}
		*maxRatio = v
	}
	if *freshPath == "" && *serveFreshPath == "" {
		fatal(fmt.Errorf("at least one of -fresh or -serve-fresh is required"))
	}
	failed := false
	if *freshPath != "" {
		failed = gateExec(*baselinePath, *freshPath, *maxRatio) || failed
	}
	if *serveFreshPath != "" {
		failed = gateServe(*serveBaselinePath, *serveFreshPath, *maxRatio) || failed
	}
	if failed {
		fatal(fmt.Errorf("performance regression beyond %.2fx tolerance (override with PERF_GATE_MAX_RATIO or PERF_GATE_SKIP=1 on known-noisy runners)", *maxRatio))
	}
	fmt.Println("perfgate: pass")
}

// gateExec compares the exec-runtime report per worker-count cell on
// best wall time. Returns true when any cell regressed.
func gateExec(baselinePath, freshPath string, maxRatio float64) bool {
	base, err := load(baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(freshPath)
	if err != nil {
		fatal(err)
	}
	if base.SF != fresh.SF || base.Seed != fresh.Seed || base.Dataset != fresh.Dataset {
		fatal(fmt.Errorf("exec reports are not comparable: baseline is %s sf=%v seed=%d, fresh is %s sf=%v seed=%d",
			base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed))
	}

	freshByWorkers := make(map[int]bench.ExecBaselineRun, len(fresh.Runs))
	for _, r := range fresh.Runs {
		freshByWorkers[r.Workers] = r
	}
	fmt.Printf("perfgate: exec baseline %s (%d cpus) vs fresh (%d cpus), tolerance %.2fx\n",
		baselinePath, base.CPUs, fresh.CPUs, maxRatio)
	failed := false
	for _, b := range base.Runs {
		f, ok := freshByWorkers[b.Workers]
		if !ok {
			fmt.Printf("  workers=%d  MISSING from fresh report\n", b.Workers)
			failed = true
			continue
		}
		allowed := maxRatio * parallelismPenalty(b.Workers, base.CPUs, fresh.CPUs)
		ratio := f.BestMS / b.BestMS
		verdict := "ok"
		if ratio > allowed {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("  workers=%d  base %.1f ms  fresh %.1f ms  ratio %.2fx  allowed %.2fx  %s\n",
			b.Workers, b.BestMS, f.BestMS, ratio, allowed, verdict)
	}
	return failed
}

// gateServe compares the serving report per strategy × readers × mix
// cell on applied ops/sec — the cell set includes the 90/10
// insert/delete mix, so retraction throughput is gated exactly like
// insert throughput. Returns true when any cell regressed.
func gateServe(baselinePath, freshPath string, maxRatio float64) bool {
	base, err := loadServe(baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := loadServe(freshPath)
	if err != nil {
		fatal(err)
	}
	if base.SF != fresh.SF || base.Seed != fresh.Seed || base.Dataset != fresh.Dataset {
		fatal(fmt.Errorf("serve reports are not comparable: baseline is %s sf=%v seed=%d, fresh is %s sf=%v seed=%d",
			base.Dataset, base.SF, base.Seed, fresh.Dataset, fresh.SF, fresh.Seed))
	}

	type key struct {
		strategy   string
		readers    int
		deleteFrac float64
	}
	freshByKey := make(map[key]bench.ServeCell, len(fresh.Cells))
	for _, c := range fresh.Cells {
		freshByKey[key{c.Strategy, c.Readers, c.DeleteFrac}] = c
	}
	fmt.Printf("perfgate: serve baseline %s (%d cpus) vs fresh (%d cpus), tolerance %.2fx\n",
		baselinePath, base.CPUs, fresh.CPUs, maxRatio)
	failed := false
	for _, b := range base.Cells {
		label := fmt.Sprintf("%s readers=%d del=%.0f%%", b.Strategy, b.Readers, 100*b.DeleteFrac)
		f, ok := freshByKey[key{b.Strategy, b.Readers, b.DeleteFrac}]
		if !ok {
			fmt.Printf("  %-36s MISSING from fresh report\n", label)
			failed = true
			continue
		}
		// The cell's client load is writers + readers concurrent
		// goroutines; a host that cannot run them in parallel gets the
		// usual slack.
		allowed := maxRatio * parallelismPenalty(b.Writers+b.Readers, base.CPUs, fresh.CPUs)
		ratio := opsPerSec(b) / opsPerSec(f)
		verdict := "ok"
		if ratio > allowed {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("  %-36s base %.0f ops/s  fresh %.0f ops/s  ratio %.2fx  allowed %.2fx  %s\n",
			label, opsPerSec(b), opsPerSec(f), ratio, allowed, verdict)
	}
	return failed
}

// opsPerSec reads a cell's applied-op throughput, falling back to the
// insert rate for reports written before the churn cells existed.
func opsPerSec(c bench.ServeCell) float64 {
	if c.OpsPerSec > 0 {
		return c.OpsPerSec
	}
	return c.InsertsPerSec
}

// parallelismPenalty is the extra slowdown allowed when the fresh host
// can give a cell less effective parallelism than the baseline host did:
// p = min(workers, cpus) per host, and a cell that had p_base ways of
// running is allowed to take p_base/p_fresh times longer on the smaller
// runner. Never below 1 — bigger runners get no extra slack.
func parallelismPenalty(workers, baseCPUs, freshCPUs int) float64 {
	pBase := min(workers, max(baseCPUs, 1))
	pFresh := min(workers, max(freshCPUs, 1))
	if pFresh >= pBase {
		return 1
	}
	return float64(pBase) / float64(pFresh)
}

func load(path string) (*bench.ExecBaselineReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.ExecBaselineReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Runs) == 0 {
		return nil, fmt.Errorf("%s: no runs recorded", path)
	}
	return &rep, nil
}

func loadServe(path string) (*bench.ServeReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.ServeReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Cells) == 0 {
		return nil, fmt.Errorf("%s: no cells recorded", path)
	}
	return &rep, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
	os.Exit(1)
}
