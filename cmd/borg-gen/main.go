// Command borg-gen generates a synthetic evaluation dataset and writes
// one CSV file per relation.
//
// Usage:
//
//	borg-gen -dataset retailer -sf 0.5 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"borg/internal/datagen"
)

func main() {
	name := flag.String("dataset", "retailer", "dataset: retailer, favorita, yelp, tpcds")
	sf := flag.Float64("sf", 0.2, "scale factor")
	seed := flag.Uint64("seed", 2020, "random seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	d, err := datagen.ByName(*name, *seed, *sf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "borg-gen: %v\n", err)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "borg-gen: %v\n", err)
		os.Exit(1)
	}
	for _, r := range d.DB.Relations() {
		path := filepath.Join(*out, r.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "borg-gen: %v\n", err)
			os.Exit(1)
		}
		if err := r.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "borg-gen: write %s: %v\n", path, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "borg-gen: close %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, r.NumRows())
	}
}
