// Command borg-serve runs the streaming-serving layer as an HTTP JSON
// service over a multi-tenant demo retail schema:
//
//	Sales(item, store, units)   Items(item, store, price)   Stores(store, area)
//
// Every relation carries the tenant key "store", so the service shards
// horizontally: -shards N hash-partitions ingest by -partition-by
// (default "store") across N independent serving shards — each with its
// own IVM maintainer and single-writer queue — while /stats and the
// model endpoints serve ring-merged global views. Tuples stream in
// through POST /insert (inserts, deletes, and updates) while reads serve
// snapshot-consistent statistics and freshly trained models to any
// number of concurrent clients — writes never block reads and reads
// never block writes.
//
// -payload selects the maintained ring statistics and, with them, the
// trainable model zoo:
//
//	covar     covariance triple: linreg, pca, kmeans
//	poly2     + lifted degree-2 ring: polyreg (continuous pairs)
//	cofactor  + categorical cofactor group maps over item and store:
//	          one-hot linreg, varying-coefficients polyreg, chowliu,
//	          ctree, svm  (the default)
//
// Usage:
//
//	borg-serve -addr :8080 -strategy fivm -payload cofactor -shards 4 -partition-by store
//
// Observability: the service logs structured events (epoch
// publications, replans, rejected ops, slow batches) through log/slog —
// -log-level picks the floor (debug, info, warn, error) and -log-format
// the encoding (text or json); -slow-batch sets the batch-duration
// threshold above which a warning is logged. GET /metrics exposes every
// pipeline metric (queue wait, batch phase splits, publication and
// merge latencies, per-shard routing, plan drift, model-training
// telemetry) in the Prometheus text format with no external
// dependencies, and GET /readyz reports readiness for load balancers:
// 503 while draining for shutdown or while the ingest queue exceeds
// -ready-high-water (default: the total queue capacity), 200 otherwise.
// /healthz stays pure liveness and never degrades under load.
//
// -pprof additionally mounts the Go runtime profiling endpoints under
// /debug/pprof/ (opt-in; exposes internals — keep it off on untrusted
// networks, and treat /metrics the same way: series names reveal
// workload shape).
//
// API:
//
//	POST /insert    {"rel": "Sales", "values": ["patty", "s1", 3]}
//	                or a JSON array of such objects; values follow the
//	                schema (strings for categorical, numbers for
//	                continuous). Each object may carry "op": "insert"
//	                (default), "delete" (retract one equal-valued
//	                tuple), or "update" (retract "values", insert
//	                "new"). Responds {"queued": n}; if some array rows
//	                fail: 207 with per-row errors; if all fail: 400.
//	DELETE /insert  same body; every row is treated as a delete.
//	GET  /stats     {"epoch", "inserts", "deletes", "queued", "count",
//	                 "means": {...}, "shards": [...], "plan": {...},
//	                 "metrics": [...], "last_error": ...}; "metrics" is
//	                 the full registry snapshot (every series with its
//	                 value, and p50/p95/p99 for histograms) as JSON, for
//	                 humans and scripts that don't speak Prometheus.
//	POST /v1/model  The snapshot model zoo behind one JSON request:
//	                  {"kind": "linreg|polyreg|pca|kmeans|chowliu|ctree|svm",
//	                   "params": {"response": "units", "lambda": 0.001,
//	                              "k": 2, "max_iters": 50000, "tol": 1e-10,
//	                              "max_depth": 4, "min_rows": 2},
//	                   "predict": {"values": {"price": 6, "area": 120},
//	                               "cats": {"item": "patty", "store": "s1"}}}
//	                Every kind trains purely from the current epoch's
//	                ring statistics (ring-merged across shards),
//	                identical to an unsharded model. "params" keys are
//	                per kind (all optional); the optional "predict"
//	                object evaluates the freshly trained model and adds
//	                "prediction" (regressions), "projection" (pca), or
//	                "decision"/"class" (svm) to the response. Bad kinds
//	                or params are 400; a model kind whose ring payload
//	                the server does not maintain, or an empty join, is
//	                409 — never a 200 with NaNs in the body.
//	GET  /model     Deprecated query-string adapter for POST /v1/model
//	                (?kind=...&response=...&lambda=...); same kinds, same
//	                statuses, response carries "Deprecation: true" and a
//	                successor Link header.
//	POST /predict   Deprecated adapter for POST /v1/model with "predict";
//	                {"kind", "response", "lambda", "k", "features": {...},
//	                 "cats": {...}} → {"prediction"|"projection": ...}.
//	GET  /metrics   Prometheus text exposition (text/plain; version=0.0.4)
//	                of every maintained series: borg_serve_* (queue wait,
//	                batch sizes, apply phase splits, publication and
//	                flush latency, epoch and epoch age, queue depth,
//	                rejected ops), borg_plan_* (replans, replan latency,
//	                drift), borg_shard_* (per-shard routing, merge
//	                latency, memo hits, skew), borg_model_* (per-kind
//	                training latency, counts, typed errors).
//	GET  /healthz   200 {"status": "ok"} — pure liveness; always 200
//	                while the process serves HTTP.
//	GET  /readyz    200 {"status": "ready"} when accepting load; 503
//	                {"status": "draining"|"overloaded"} during shutdown
//	                or when the ingest queue exceeds -ready-high-water.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"borg"
)

// contFeatures are the demo schema's continuous features; catFeatures
// the categorical ones maintained as cofactor group-by slots when
// -payload cofactor.
var (
	contFeatures = []string{"units", "price", "area"}
	catFeatures  = []string{"item", "store"}
)

type insertReq struct {
	Rel    string `json:"rel"`
	Values []any  `json:"values"`
	// Op selects the operation: "insert" (default), "delete", or
	// "update" (retract Values, insert New).
	Op  string `json:"op,omitempty"`
	New []any  `json:"new,omitempty"`
}

// apply routes one request row to the server. forceDelete is the
// DELETE-method path, where every row retracts regardless of Op.
func (r insertReq) apply(srv *borg.ShardedServer, forceDelete bool) error {
	op := r.Op
	if forceDelete {
		if op != "" && op != "delete" {
			return fmt.Errorf("op %q not allowed on DELETE /insert", op)
		}
		op = "delete"
	}
	switch op {
	case "", "insert":
		return srv.Insert(r.Rel, r.Values...)
	case "delete":
		return srv.Delete(r.Rel, r.Values...)
	case "update":
		if r.New == nil {
			return fmt.Errorf("update for %s is missing the \"new\" values", r.Rel)
		}
		return srv.Update(r.Rel, r.Values, r.New)
	default:
		return fmt.Errorf("unknown op %q (want insert, delete, or update)", op)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	strategy := flag.String("strategy", "fivm", "IVM strategy: fivm, higher-order, first-order")
	batch := flag.Int("batch", 64, "inserts per snapshot publication")
	flush := flag.Duration("flush", time.Millisecond, "max snapshot staleness for a partial batch")
	queue := flag.Int("queue", 1024, "ingest queue depth (backpressure beyond it)")
	workers := flag.Int("workers", 2, "exec worker pool size for maintenance scans")
	payload := flag.String("payload", "", `ring payload: "covar", "poly2" (lifted degree-2, enables polyreg pairs), or "cofactor" (categorical group maps, enables the full zoo; the default)`)
	lifted := flag.Bool("lifted", false, "deprecated: equivalent to -payload poly2 when -payload is unset")
	shards := flag.Int("shards", 1, "serving shards; ingest is hash-partitioned across them and reads are ring-merged")
	partitionBy := flag.String("partition-by", "store", "partition attribute (must appear in every relation of the join)")
	oneShot := flag.Bool("oneshot", false, "start, self-check the endpoints, and exit (CI smoke)")
	pprofOn := flag.Bool("pprof", false, "expose Go runtime profiling under /debug/pprof/ (opt-in; do not enable on untrusted networks)")
	logLevel := flag.String("log-level", "info", "structured log floor: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", `structured log encoding: "text" or "json"`)
	slowBatch := flag.Duration("slow-batch", 100*time.Millisecond, "warn when one maintenance batch takes longer than this")
	readyHighWater := flag.Int("ready-high-water", 0, "queued ops beyond which /readyz reports 503 (0: total queue capacity)")
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		log.Fatalf("borg-serve: %v", err)
	}
	opt := borg.ServerOptions{
		Strategy:           *strategy,
		BatchSize:          *batch,
		FlushInterval:      *flush,
		QueueDepth:         *queue,
		Workers:            *workers,
		Logger:             logger,
		SlowBatchThreshold: *slowBatch,
	}
	switch *payload {
	case "covar":
		opt.Payload = borg.PayloadCovar
	case "poly2":
		opt.Payload = borg.PayloadPoly2
	case "cofactor":
		opt.Payload = borg.PayloadCofactor
	case "":
		if *lifted {
			opt.Payload = borg.PayloadPoly2
		} else {
			opt.Payload = borg.PayloadCofactor
		}
	default:
		log.Fatalf("borg-serve: unknown -payload %q (want covar, poly2, or cofactor)", *payload)
	}

	db := borg.NewDatabase()
	db.AddRelation("Sales", borg.Cat("item"), borg.Cat("store"), borg.Num("units"))
	db.AddRelation("Items", borg.Cat("item"), borg.Cat("store"), borg.Num("price"))
	db.AddRelation("Stores", borg.Cat("store"), borg.Num("area"))
	q, err := db.Query()
	if err != nil {
		log.Fatal(err)
	}
	features := contFeatures
	if opt.Payload == borg.PayloadCofactor {
		features = append(append([]string(nil), contFeatures...), catFeatures...)
	}
	srv, err := q.ServeSharded(features, borg.ShardOptions{
		ServerOptions: opt,
		Shards:        *shards,
		PartitionBy:   *partitionBy,
	})
	if err != nil {
		log.Fatal(err)
	}

	highWater := *readyHighWater
	if highWater <= 0 {
		// Default: the tier's total queue capacity — beyond it, enqueues
		// block anyway, so new load should go elsewhere.
		highWater = *queue * srv.NumShards()
	}
	svc := &service{srv: srv, queueLen: srv.QueueLen, highWater: highWater}
	handler := newHandler(svc)
	if *pprofOn {
		handler = withPprof(handler)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	if *oneShot {
		if err := selfCheck(srv, svc, httpSrv.Handler); err != nil {
			log.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("borg-serve: one-shot self-check passed")
		return
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		// Flip readiness before closing listeners so load balancers stop
		// routing while in-flight requests drain.
		svc.draining.Store(true)
		shutCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		_ = httpSrv.Shutdown(shutCtx)
	}()
	log.Printf("borg-serve: %s strategy, %s payload, %d shard(s) partitioned by %q, listening on %s", *strategy, srv.Payload(), srv.NumShards(), *partitionBy, *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := srv.Flush(); err != nil {
		log.Printf("borg-serve: flush: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}

// allKinds is every model kind the zoo can serve, in documentation
// order.
var allKinds = []string{"linreg", "polyreg", "pca", "kmeans", "chowliu", "ctree", "svm"}

// selfCheck drives every endpoint once through the handler (no network),
// so CI can smoke-test the whole service path in one process — at any
// shard count and payload, since the endpoints are shard-transparent and
// payload gating is part of the contract under test.
func selfCheck(srv *borg.ShardedServer, svc *service, h http.Handler) error {
	do := func(method, path, body string) (int, string) {
		code, b, _ := doHeader(h, method, path, body)
		return code, b
	}
	pl := srv.Payload()
	count := func() (float64, error) {
		if err := srv.Flush(); err != nil {
			return 0, err
		}
		code, body := do("GET", "/stats", "")
		if code != http.StatusOK {
			return 0, fmt.Errorf("stats: %d %s", code, body)
		}
		var stats struct {
			Count   float64 `json:"count"`
			Deletes uint64  `json:"deletes"`
			Queued  int     `json:"queued"`
			Shards  []struct {
				Shard  int    `json:"shard"`
				Queued int    `json:"queued"`
				Root   string `json:"root"`
			} `json:"shards"`
			Plan struct {
				Root  string  `json:"root"`
				Depth int     `json:"depth"`
				Width int     `json:"width"`
				Drift float64 `json:"drift"`
			} `json:"plan"`
		}
		if err := json.Unmarshal([]byte(body), &stats); err != nil {
			return 0, fmt.Errorf("stats body: %v", err)
		}
		if len(stats.Shards) != srv.NumShards() {
			return 0, fmt.Errorf("stats reports %d shard rows, want %d: %s", len(stats.Shards), srv.NumShards(), body)
		}
		// After the Flush barrier every shard's queue is drained.
		if stats.Queued != 0 {
			return 0, fmt.Errorf("queued = %d after flush: %s", stats.Queued, body)
		}
		// The plan block must always describe a real plan: a named root,
		// a positive variable-order depth, width ≥ 1 (1 = acyclic), and
		// a drift ratio ≥ 1, with every shard reporting the same root.
		if stats.Plan.Root == "" || stats.Plan.Depth <= 0 || stats.Plan.Width < 1 || stats.Plan.Drift < 1 {
			return 0, fmt.Errorf("stats plan block is degenerate: %s", body)
		}
		for _, sh := range stats.Shards {
			if sh.Root != stats.Plan.Root {
				return 0, fmt.Errorf("shard %d planned at root %q, tier at %q: %s", sh.Shard, sh.Root, stats.Plan.Root, body)
			}
		}
		return stats.Count, nil
	}
	// The degenerate-snapshot contract, before anything streams in: an
	// empty join trains NO model of any kind — 409, never a 200 carrying
	// NaNs — whether because the join is empty or because the payload is
	// not maintained; /stats stays a healthy 200 reporting count 0. Both
	// the v1 route and the deprecated GET adapter honor it.
	for _, kind := range allKinds {
		code, body := do("POST", "/v1/model", `{"kind": "`+kind+`"}`)
		if code != http.StatusConflict {
			return fmt.Errorf("v1 model kind=%s on empty join: %d %s, want 409", kind, code, body)
		}
		if strings.Contains(body, "NaN") {
			return fmt.Errorf("v1 model kind=%s on empty join leaked NaN: %s", kind, body)
		}
		code, body, hdr := doHeader(h, "GET", "/model?kind="+kind, "")
		if code != http.StatusConflict {
			return fmt.Errorf("model kind=%s on empty join: %d %s, want 409", kind, code, body)
		}
		if hdr.Get("Deprecation") == "" {
			return fmt.Errorf("GET /model response is missing the Deprecation header")
		}
	}
	if c, err := count(); err != nil || c != 0 {
		return fmt.Errorf("stats on empty join = %v, want 0 (%v)", c, err)
	}

	if code, body := do("POST", "/insert", `[
		{"rel": "Items", "values": ["patty", "s1", 6]},
		{"rel": "Items", "values": ["bun", "s2", 2]},
		{"rel": "Stores", "values": ["s1", 120]},
		{"rel": "Stores", "values": ["s2", 80]},
		{"rel": "Sales", "values": ["patty", "s1", 3]},
		{"rel": "Sales", "values": ["patty", "s1", 5]},
		{"rel": "Sales", "values": ["bun", "s2", 4]}
	]`); code != http.StatusOK {
		return fmt.Errorf("insert: %d %s", code, body)
	}
	if c, err := count(); err != nil || c != 3 {
		return fmt.Errorf("count after inserts = %v, want 3 (%v)", c, err)
	}

	// The model zoo over the v1 route: every payload-supported kind
	// trains from the same epoch statistics; the rest refuse with 409.
	var zoo, gated []string
	zoo = append(zoo, `{"kind": "linreg", "params": {"response": "units", "lambda": 0.001}}`,
		`{"kind": "linreg", "params": {"max_iters": 20000, "tol": 1e-8}}`,
		`{"kind": "pca", "params": {"k": 2}}`,
		`{"kind": "kmeans", "params": {"k": 3}}`)
	switch pl {
	case borg.PayloadPoly2:
		zoo = append(zoo, `{"kind": "polyreg", "params": {"response": "units"}}`)
		gated = append(gated, "chowliu", "ctree", "svm")
	case borg.PayloadCofactor:
		zoo = append(zoo,
			`{"kind": "polyreg", "params": {"response": "units"}}`,
			`{"kind": "chowliu"}`,
			`{"kind": "ctree", "params": {"response": "units", "max_depth": 3}}`,
			`{"kind": "svm", "params": {"response": "units", "lambda": 0.01}}`)
	default:
		gated = append(gated, "polyreg", "chowliu", "ctree", "svm")
	}
	for _, body := range zoo {
		if code, out := do("POST", "/v1/model", body); code != http.StatusOK {
			return fmt.Errorf("v1 model %s: %d %s", body, code, out)
		}
	}
	for _, kind := range gated {
		if code, out := do("POST", "/v1/model", `{"kind": "`+kind+`"}`); code != http.StatusConflict {
			return fmt.Errorf("v1 model kind=%s without its payload: %d %s, want 409", kind, code, out)
		}
	}
	// The deprecated GET adapter serves the same kinds with the same
	// statuses, plus the Deprecation/Link headers.
	var linreg struct {
		Converged  bool `json:"converged"`
		Iterations int  `json:"iterations"`
	}
	code, body, hdr := doHeader(h, "GET", "/model?response=units&lambda=0.001", "")
	if code != http.StatusOK {
		return fmt.Errorf("model: %d %s", code, body)
	}
	if hdr.Get("Deprecation") == "" || !strings.Contains(hdr.Get("Link"), "/v1/model") {
		return fmt.Errorf("GET /model is missing the Deprecation/Link headers")
	}
	if err := json.Unmarshal([]byte(body), &linreg); err != nil || !linreg.Converged {
		return fmt.Errorf("linreg convergence not reported: %s (%v)", body, err)
	}
	legacy := []string{"kind=pca&k=2", "kind=kmeans&k=3"}
	if pl == borg.PayloadCofactor {
		legacy = append(legacy, "kind=chowliu", "kind=ctree&response=units", "kind=svm&response=units")
	}
	for _, q := range legacy {
		if code, body := do("GET", "/model?"+q, ""); code != http.StatusOK {
			return fmt.Errorf("model?%s: %d %s", q, code, body)
		}
	}
	// Categorical predictions: the cofactor payload's models evaluate on
	// mixed continuous values + category strings, in the same request
	// that trains them.
	if pl == borg.PayloadCofactor {
		code, body := do("POST", "/v1/model", `{
			"kind": "linreg", "params": {"response": "units"},
			"predict": {"values": {"price": 6, "area": 120}, "cats": {"item": "patty", "store": "s1"}}}`)
		if code != http.StatusOK || !strings.Contains(body, "prediction") {
			return fmt.Errorf("v1 categorical linreg predict: %d %s", code, body)
		}
		code, body = do("POST", "/v1/model", `{
			"kind": "svm", "params": {"response": "units"},
			"predict": {"values": {"price": 6, "area": 120}, "cats": {"item": "patty", "store": "s1"}}}`)
		if code != http.StatusOK || !strings.Contains(body, "class") {
			return fmt.Errorf("v1 svm classify: %d %s", code, body)
		}
		// A predict body that omits a categorical feature is a client
		// error, not a server fault.
		if code, body := do("POST", "/v1/model", `{
			"kind": "linreg", "params": {"response": "units"},
			"predict": {"values": {"price": 6, "area": 120}}}`); code != http.StatusBadRequest {
			return fmt.Errorf("v1 predict missing cats: %d %s, want 400", code, body)
		}
	}
	// Malformed model requests are client errors (400), not server
	// faults — on both routes.
	for _, q := range []string{
		"kind=transformer", "kind=pca&k=zero", "kind=kmeans&k=-3",
		"lambda=banana", "response=ghost", "kind=linreg&max_iters=0", "tol=-1",
		"kind=ctree&max_depth=-1", "kind=ctree&min_rows=banana",
	} {
		if code, body := do("GET", "/model?"+q, ""); code != http.StatusBadRequest {
			return fmt.Errorf("model?%s: %d %s, want 400", q, code, body)
		}
	}
	for _, body := range []string{
		`{"kind": "transformer"}`,
		`{"kind": "pca", "params": {"k": -1}}`,
		`{"kind": "kmeans", "predict": {"values": {"price": 6}}}`,
		`not json`,
	} {
		if code, out := do("POST", "/v1/model", body); code != http.StatusBadRequest {
			return fmt.Errorf("v1 model %s: %d %s, want 400", body, code, out)
		}
	}
	// Deprecated prediction round trips: regression kinds predict, pca
	// projects, and the adapter carries the Deprecation header.
	var pred struct {
		Prediction float64 `json:"prediction"`
	}
	regBody := `{"kind": "linreg", "response": "units", "features": {"price": 6, "area": 120}}`
	if pl == borg.PayloadCofactor {
		regBody = `{"kind": "linreg", "response": "units", "features": {"price": 6, "area": 120}, "cats": {"item": "patty", "store": "s1"}}`
	}
	code, body, hdr = doHeader(h, "POST", "/predict", regBody)
	if code != http.StatusOK {
		return fmt.Errorf("predict linreg: %d %s", code, body)
	}
	if hdr.Get("Deprecation") == "" {
		return fmt.Errorf("POST /predict is missing the Deprecation header")
	}
	if err := json.Unmarshal([]byte(body), &pred); err != nil {
		return fmt.Errorf("predict body: %v", err)
	}
	if code, body := do("POST", "/predict", `{"kind": "pca", "k": 1, "features": {"units": 4, "price": 6, "area": 120}}`); code != http.StatusOK || !strings.Contains(body, "projection") {
		return fmt.Errorf("predict pca: %d %s", code, body)
	}
	if code, body := do("POST", "/predict", `{"kind": "kmeans", "features": {"price": 6}}`); code != http.StatusBadRequest {
		return fmt.Errorf("predict kmeans: %d %s, want 400", code, body)
	}
	if code, body := do("GET", "/healthz", ""); code != http.StatusOK {
		return fmt.Errorf("healthz: %d %s", code, body)
	}
	// Readiness transitions, driven through the injectable queue reading:
	// ready under normal load, 503 "overloaded" while the queue reads
	// over the high-water mark, ready again once it drains.
	if code, body := do("GET", "/readyz", ""); code != http.StatusOK || !strings.Contains(body, "ready") {
		return fmt.Errorf("readyz: %d %s", code, body)
	}
	liveQueue := svc.queueLen
	svc.queueLen = func() int { return svc.highWater + 1 }
	code, body = do("GET", "/readyz", "")
	svc.queueLen = liveQueue
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "overloaded") {
		return fmt.Errorf("readyz over high water: %d %s, want 503 overloaded", code, body)
	}
	if code, body := do("GET", "/readyz", ""); code != http.StatusOK {
		return fmt.Errorf("readyz did not recover after drain: %d %s", code, body)
	}
	if code, body := do("POST", "/insert", `{"rel": "Nope", "values": []}`); code != http.StatusUnprocessableEntity {
		return fmt.Errorf("bad insert accepted: %d %s", code, body)
	}

	// Retraction path: an op:"delete" row, an op:"update" correction,
	// and the DELETE method all maintain the same statistics.
	if code, body := do("POST", "/insert", `{"rel": "Sales", "values": ["patty", "s1", 5], "op": "delete"}`); code != http.StatusOK {
		return fmt.Errorf("delete op: %d %s", code, body)
	}
	if c, err := count(); err != nil || c != 2 {
		return fmt.Errorf("count after delete = %v, want 2 (%v)", c, err)
	}
	if code, body := do("POST", "/insert", `{"rel": "Sales", "values": ["patty", "s1", 3], "op": "update", "new": ["patty", "s1", 7]}`); code != http.StatusOK {
		return fmt.Errorf("update op: %d %s", code, body)
	}
	if c, err := count(); err != nil || c != 2 {
		return fmt.Errorf("count after update = %v, want 2 (%v)", c, err)
	}
	if code, body := do("DELETE", "/insert", `[
		{"rel": "Sales", "values": ["patty", "s1", 7]},
		{"rel": "Sales", "values": ["bun", "s2", 4]}
	]`); code != http.StatusOK {
		return fmt.Errorf("DELETE method: %d %s", code, body)
	}
	if c, err := count(); err != nil || c != 0 {
		return fmt.Errorf("count after DELETE = %v, want 0 (%v)", c, err)
	}
	if code, body := do("DELETE", "/insert", `{"rel": "Sales", "values": ["x", "y", 1], "op": "insert"}`); code != http.StatusUnprocessableEntity {
		return fmt.Errorf("insert op on DELETE method accepted: %d %s", code, body)
	}

	// Array status semantics: partial failure is 207 with per-row
	// errors, total failure is 400 — never a blanket 200.
	code, body = do("POST", "/insert", `[
		{"rel": "Items", "values": ["onion", "s1", 2]},
		{"rel": "Nope", "values": []}
	]`)
	if code != http.StatusMultiStatus {
		return fmt.Errorf("partial-failure array: %d %s, want 207", code, body)
	}
	var partial struct {
		Queued int `json:"queued"`
		Failed int `json:"failed"`
		Errors []struct {
			Index int    `json:"index"`
			Error string `json:"error"`
		} `json:"errors"`
	}
	if err := json.Unmarshal([]byte(body), &partial); err != nil {
		return fmt.Errorf("partial-failure body: %v", err)
	}
	if partial.Queued != 1 || partial.Failed != 1 || len(partial.Errors) != 1 || partial.Errors[0].Index != 1 {
		return fmt.Errorf("partial-failure payload wrong: %s", body)
	}
	if code, body := do("POST", "/insert", `[{"rel": "Nope", "values": []}, {"rel": "Sales", "values": []}]`); code != http.StatusBadRequest {
		return fmt.Errorf("all-failed array: %d %s, want 400", code, body)
	}

	// Churned-to-empty is the same degenerate state as never-populated:
	// every Sales row was retracted above, so the join is empty again and
	// every trainer must refuse with 409 — the bug class this contract
	// rules out is exactly a 200 full of NaNs here.
	for _, kind := range allKinds {
		code, body := do("POST", "/v1/model", `{"kind": "`+kind+`"}`)
		if code != http.StatusConflict {
			return fmt.Errorf("v1 model kind=%s on churned-to-empty join: %d %s, want 409", kind, code, body)
		}
	}

	// Last, with every endpoint's traffic behind us: the exposition must
	// carry the whole pipeline's series with values that traffic implies,
	// and /stats must mirror the registry in its "metrics" block.
	if err := checkMetrics(h); err != nil {
		return err
	}
	code, body = do("GET", "/stats", "")
	if code != http.StatusOK {
		return fmt.Errorf("stats: %d %s", code, body)
	}
	var withMetrics struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &withMetrics); err != nil {
		return fmt.Errorf("stats metrics block: %v", err)
	}
	if len(withMetrics.Metrics) < 15 {
		return fmt.Errorf("stats metrics block has %d series, want >= 15", len(withMetrics.Metrics))
	}
	return nil
}

// checkMetrics scrapes GET /metrics and asserts the exposition is
// healthy after the self-check's known traffic: the Prometheus text
// content type, at least 15 metric families spanning the serve, plan,
// shard, and model layers, and values the traffic implies on the core
// series.
func checkMetrics(h http.Handler) error {
	code, body, hdr := doHeader(h, "GET", "/metrics", "")
	if code != http.StatusOK {
		return fmt.Errorf("metrics: %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("metrics content type %q, want text/plain", ct)
	}
	if families := strings.Count(body, "# TYPE "); families < 15 {
		return fmt.Errorf("metrics exposition has %d families, want >= 15", families)
	}
	// sum folds every sample of one series name across its label sets —
	// under -shards N the serve series split into shard="i" children.
	sum := func(name string) (float64, int) {
		var total float64
		n := 0
		for _, line := range strings.Split(body, "\n") {
			rest, ok := strings.CutPrefix(line, name)
			if !ok {
				continue
			}
			i := strings.IndexByte(rest, ' ')
			if i < 0 {
				continue
			}
			if labels := rest[:i]; labels != "" && (!strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}")) {
				continue // a longer name that shares the prefix
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rest[i:]), 64)
			if err != nil {
				continue
			}
			total += v
			n++
		}
		return total, n
	}
	for _, c := range []struct {
		series string
		min    float64
	}{
		{"borg_serve_inserts_total", 7},       // the seed rows streamed in
		{"borg_serve_queue_wait_ns_count", 7}, // each op waited in a queue
		{"borg_serve_publish_ns_count", 1},    // at least one epoch published
		{"borg_serve_batch_size_count", 1},    // at least one batch applied
		{"borg_plan_drift", 1},                // drift ratio is >= 1 by definition
		{"borg_shard_routed_total", 7},        // every op routed through the tier
		{"borg_shard_skew", 1},                // skew ratio is >= 1 by definition
		{"borg_model_train_total", 4},         // the zoo round trained >= 4 kinds
		{"borg_model_train_errors_total", 7},  // two empty-join refusals per kind
		{"borg_serve_rejected_ops_total", 0},  // present even when nothing rejected
		{"borg_serve_epoch_age_seconds", 0},   // scrape-time gauge exists
	} {
		got, n := sum(c.series)
		if n == 0 {
			return fmt.Errorf("metrics exposition is missing %s", c.series)
		}
		if got < c.min {
			return fmt.Errorf("%s = %v, want >= %v", c.series, got, c.min)
		}
	}
	return nil
}

// doHeader drives one request through the handler and returns status,
// body, and response headers.
func doHeader(h http.Handler, method, path, body string) (int, string, http.Header) {
	req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Result().Header
}

// withPprof mounts the Go runtime profiling endpoints beside the
// service handler — CPU and heap profiles of a live ingest under
// /debug/pprof/, the standard way to see where a slow multi-core
// ingest actually spends its time. Opt-in via -pprof only: the
// endpoints expose internals and cost CPU while profiling.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

// markDeprecated stamps a legacy endpoint's response with the RFC 8594
// Deprecation header and a Link to the successor route.
func markDeprecated(w http.ResponseWriter) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/model>; rel="successor-version"`)
}

// newLogger builds the service's structured logger from the -log-level
// and -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// service is the HTTP-facing state: the serving tier plus the readiness
// inputs. queueLen is injectable so tests can exercise the overload
// path without actually saturating a queue.
type service struct {
	srv       *borg.ShardedServer
	queueLen  func() int
	highWater int
	// draining flips once at shutdown, before listeners close, so
	// /readyz turns 503 while in-flight requests finish.
	draining atomic.Bool
}

// newHandler wires the endpoints over a running (possibly sharded)
// server.
func newHandler(svc *service) http.Handler {
	srv := svc.srv
	mux := http.NewServeMux()
	ingest := func(forceDelete bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			reqs, isArray, err := parseInserts(body)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			// Array bodies are applied item by item, not atomically:
			// every row is attempted and the response carries per-row
			// errors, so clients retry exactly the failed rows. The
			// status distinguishes total failure (400), partial failure
			// (207), and success (200); a failing single-object body
			// stays 422 as before.
			type rowErr struct {
				Index int    `json:"index"`
				Error string `json:"error"`
			}
			var errs []rowErr
			for i, req := range reqs {
				if err := req.apply(srv, forceDelete); err != nil {
					errs = append(errs, rowErr{Index: i, Error: err.Error()})
				}
			}
			queued := len(reqs) - len(errs)
			switch {
			case len(errs) == 0:
				writeJSON(w, http.StatusOK, map[string]any{"queued": queued})
			case !isArray:
				writeJSON(w, http.StatusUnprocessableEntity, map[string]any{"error": errs[0].Error, "queued": 0})
			case queued == 0:
				writeJSON(w, http.StatusBadRequest, map[string]any{"queued": 0, "failed": len(errs), "errors": errs})
			default:
				writeJSON(w, http.StatusMultiStatus, map[string]any{"queued": queued, "failed": len(errs), "errors": errs})
			}
		}
	}
	mux.HandleFunc("POST /insert", ingest(false))
	mux.HandleFunc("DELETE /insert", ingest(true))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		// One merged snapshot feeds every aggregate field, so those
		// counters are mutually consistent; "queued" and the per-shard
		// rows are inherently live readings taken alongside (each shard
		// row is itself consistent — one snapshot load per shard).
		snap := srv.CovarSnapshot()
		means := make(map[string]float64, len(contFeatures))
		for _, f := range contFeatures {
			m, err := snap.Mean(f)
			if errors.Is(err, borg.ErrEmptySnapshot) {
				// /stats is a health view, not a trainer: an empty join is
				// a normal state here, reported as count 0 with zero means
				// rather than an error status.
				m = 0
			} else if err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			means[f] = m
		}
		st := srv.Stats()
		shardRows := make([]map[string]any, len(st.Shards))
		for i, row := range st.Shards {
			shardRows[i] = map[string]any{
				"shard":   i,
				"epoch":   row.Epoch,
				"inserts": row.Inserts,
				"deletes": row.Deletes,
				"queued":  row.Queued,
				"count":   row.Count,
				"root":    row.Root,
				"drift":   row.Drift,
				"replans": row.Replans,
			}
		}
		var lastErr any
		if err := srv.Err(); err != nil {
			lastErr = err.Error()
		}
		// The registry snapshot rides along for humans and scripts that
		// don't speak the Prometheus text format: every series with its
		// value, plus count/sum/p50/p95/p99 for the histograms.
		var metrics any
		if reg := srv.Metrics(); reg != nil {
			metrics = reg.Snapshot()
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch":   snap.Epoch(),
			"inserts": snap.Inserts(),
			"deletes": snap.Deletes(),
			"queued":  st.Queued,
			"count":   snap.Count(),
			"means":   means,
			"shards":  shardRows,
			// The plan block is the operator's first stop before
			// profiling a slow server: which root the maintainers are
			// built under, how deep/wide the variable order is, and how
			// far churn has drifted the live sizes from that choice.
			"plan": map[string]any{
				"root":    st.Root,
				"depth":   st.PlanDepth,
				"width":   st.PlanWidth,
				"drift":   st.Drift,
				"replans": st.Replans,
			},
			"metrics":    metrics,
			"last_error": lastErr,
		})
	})
	mux.HandleFunc("POST /v1/model", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var req v1ModelReq
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad model body: %v", err))
			return
		}
		serveModel(w, srv, req)
	})
	mux.HandleFunc("GET /model", func(w http.ResponseWriter, r *http.Request) {
		// Deprecated adapter: the query string maps onto a v1 body.
		markDeprecated(w)
		req, err := queryToV1(r.URL.Query())
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		serveModel(w, srv, req)
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		// Deprecated adapter: the flat predict body maps onto a v1 body
		// with a "predict" object.
		markDeprecated(w)
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var legacy predictReq
		if err := json.Unmarshal(body, &legacy); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad predict body: %v", err))
			return
		}
		req, err := legacy.v1()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		serveModel(w, srv, req)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := srv.Metrics()
		if reg == nil {
			httpError(w, http.StatusNotFound, errors.New("metrics are disabled on this server"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteExposition(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the process is up and serving HTTP. Load-based
		// degradation belongs to /readyz — a wedged-but-alive server must
		// not get restarted by its liveness probe for being busy.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if svc.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		if q := svc.queueLen(); q > svc.highWater {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "overloaded", "queued": q, "high_water": svc.highWater,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "queued": svc.queueLen(), "high_water": svc.highWater})
	})
	return mux
}

// v1ModelReq is the POST /v1/model body: one kind, its parameters, and
// an optional evaluation of the freshly trained model.
type v1ModelReq struct {
	Kind    string     `json:"kind"`
	Params  v1Params   `json:"params"`
	Predict *v1Predict `json:"predict,omitempty"`
}

// v1Params carries every kind's tuning knobs; keys irrelevant to the
// requested kind are ignored, malformed values are 400.
type v1Params struct {
	Response string   `json:"response,omitempty"`
	Lambda   *float64 `json:"lambda,omitempty"`
	K        int      `json:"k,omitempty"`
	MaxIters int      `json:"max_iters,omitempty"`
	Tol      float64  `json:"tol,omitempty"`
	MaxDepth int      `json:"max_depth,omitempty"`
	MinRows  float64  `json:"min_rows,omitempty"`
}

// v1Predict evaluates the trained model on continuous values and
// category strings.
type v1Predict struct {
	Values map[string]float64 `json:"values"`
	Cats   map[string]string  `json:"cats,omitempty"`
}

// serveModel validates, trains, optionally evaluates, and renders one
// model request — the shared core of POST /v1/model and both deprecated
// adapters.
func serveModel(w http.ResponseWriter, srv *borg.ShardedServer, req v1ModelReq) {
	p, err := req.validate()
	if err != nil {
		// Malformed client input — unknown kind, unknown response
		// attribute, out-of-range numbers — is 400, not 500: nothing
		// broke on the server.
		httpError(w, http.StatusBadRequest, err)
		return
	}
	snap := srv.CovarSnapshot()
	body, err := trainModel(snap, p, req.Predict)
	if err != nil {
		httpError(w, modelStatus(err), err)
		return
	}
	body["epoch"] = snap.Epoch()
	body["count"] = snap.Count()
	body["kind"] = p.kind
	writeJSON(w, http.StatusOK, body)
}

// modelParams is the validated parameter set of one model-zoo request.
type modelParams struct {
	kind     string
	response string
	lambda   float64
	k        int
	gd       borg.GDOptions
	tree     borg.TreeOptions
}

// validate checks a v1 body the way parseModelParams checks the legacy
// query string: every malformed or unknown input is rejected here, so
// the handlers map validation failures to 400 uniformly.
func (r v1ModelReq) validate() (modelParams, error) {
	p := modelParams{kind: r.Kind, response: r.Params.Response, lambda: 1e-3, k: 2}
	if p.kind == "" {
		p.kind = "linreg"
	}
	known := false
	for _, k := range allKinds {
		known = known || k == p.kind
	}
	if !known {
		return p, fmt.Errorf("unknown model kind %q (want one of %s)", p.kind, strings.Join(allKinds, ", "))
	}
	if p.response == "" {
		p.response = "units"
	}
	switch p.kind {
	case "linreg", "polyreg", "ctree", "svm":
		ok := false
		for _, f := range contFeatures {
			ok = ok || f == p.response
		}
		if !ok {
			return p, fmt.Errorf("unknown response attribute %q (maintained features: %v)", p.response, contFeatures)
		}
	}
	if r.Params.Lambda != nil {
		if *r.Params.Lambda < 0 {
			return p, fmt.Errorf("bad lambda %v: want a non-negative number", *r.Params.Lambda)
		}
		p.lambda = *r.Params.Lambda
	}
	if r.Params.K != 0 {
		if r.Params.K < 1 {
			return p, fmt.Errorf("bad k %d: want an integer >= 1", r.Params.K)
		}
		p.k = r.Params.K
	}
	if r.Params.MaxIters != 0 {
		if r.Params.MaxIters < 1 {
			return p, fmt.Errorf("bad max_iters %d: want an integer >= 1", r.Params.MaxIters)
		}
		p.gd.MaxIters = r.Params.MaxIters
	}
	if r.Params.Tol != 0 {
		if r.Params.Tol <= 0 {
			return p, fmt.Errorf("bad tol %v: want a positive number", r.Params.Tol)
		}
		p.gd.Tol = r.Params.Tol
	}
	if r.Params.MaxDepth != 0 {
		if r.Params.MaxDepth < 1 {
			return p, fmt.Errorf("bad max_depth %d: want an integer >= 1", r.Params.MaxDepth)
		}
		p.tree.MaxDepth = r.Params.MaxDepth
	}
	if r.Params.MinRows != 0 {
		if r.Params.MinRows < 0 {
			return p, fmt.Errorf("bad min_rows %v: want a non-negative number", r.Params.MinRows)
		}
		p.tree.MinRows = r.Params.MinRows
	}
	if r.Predict != nil {
		switch p.kind {
		case "kmeans", "chowliu", "ctree":
			return p, fmt.Errorf("kind %q has no prediction; use linreg, polyreg, pca, or svm", p.kind)
		}
		if len(r.Predict.Values) == 0 {
			return p, fmt.Errorf(`"predict" needs a "values" object of continuous feature values`)
		}
		for f := range r.Predict.Values {
			known := false
			for _, g := range contFeatures {
				known = known || f == g
			}
			if !known {
				return p, fmt.Errorf("unknown feature %q (maintained features: %v)", f, contFeatures)
			}
		}
	}
	return p, nil
}

// queryToV1 maps the deprecated GET /model query string onto a v1 body.
func queryToV1(q url.Values) (v1ModelReq, error) {
	r := v1ModelReq{Kind: q.Get("kind"), Params: v1Params{Response: q.Get("response")}}
	var err error
	if s := q.Get("lambda"); s != "" {
		var l float64
		if l, err = strconv.ParseFloat(s, 64); err != nil {
			return r, fmt.Errorf("bad lambda %q: want a non-negative number", s)
		}
		r.Params.Lambda = &l
	}
	if s := q.Get("k"); s != "" {
		if r.Params.K, err = strconv.Atoi(s); err != nil || r.Params.K < 1 {
			return r, fmt.Errorf("bad k %q: want an integer >= 1", s)
		}
	}
	if s := q.Get("max_iters"); s != "" {
		// Zero means "unset" in the v1 body, so the legacy adapter must
		// range-check eagerly to keep rejecting max_iters=0.
		if r.Params.MaxIters, err = strconv.Atoi(s); err != nil || r.Params.MaxIters < 1 {
			return r, fmt.Errorf("bad max_iters %q: want an integer >= 1", s)
		}
	}
	if s := q.Get("tol"); s != "" {
		if r.Params.Tol, err = strconv.ParseFloat(s, 64); err != nil {
			return r, fmt.Errorf("bad tol %q: want a positive number", s)
		}
	}
	if s := q.Get("max_depth"); s != "" {
		if r.Params.MaxDepth, err = strconv.Atoi(s); err != nil {
			return r, fmt.Errorf("bad max_depth %q: want an integer >= 1", s)
		}
	}
	if s := q.Get("min_rows"); s != "" {
		if r.Params.MinRows, err = strconv.ParseFloat(s, 64); err != nil {
			return r, fmt.Errorf("bad min_rows %q: want a non-negative number", s)
		}
	}
	return r, nil
}

// trainModel trains one model-zoo kind on a frozen snapshot, optionally
// evaluates it, and renders its JSON body (without the shared
// epoch/count/kind envelope).
func trainModel(snap *borg.ServerSnapshot, p modelParams, pr *v1Predict) (map[string]any, error) {
	switch p.kind {
	case "linreg":
		model, err := snap.TrainLinRegGD(p.response, p.lambda, p.gd)
		if err != nil {
			return nil, err
		}
		coefs := make(map[string]float64)
		for _, f := range snap.Features() {
			if f == p.response {
				continue
			}
			c, err := model.Coefficient(f)
			if err != nil {
				return nil, err
			}
			coefs[f] = c
		}
		body := map[string]any{
			"response":     p.response,
			"lambda":       p.lambda,
			"intercept":    model.Intercept(),
			"coefficients": coefs,
			"converged":    model.Converged(),
			"iterations":   model.IterationsRun(),
		}
		if cats := snap.CatFeatures(); len(cats) > 0 {
			body["cat_features"] = cats
		}
		if pr != nil {
			pred, err := predictReg(model.Predict, model.PredictCat, snap, pr)
			if err != nil {
				return nil, err
			}
			body["prediction"] = pred
		}
		return body, nil
	case "polyreg":
		model, err := snap.TrainPolyReg(p.response, p.lambda)
		if err != nil {
			return nil, err
		}
		coefs := make(map[string]float64)
		base := model.Features()
		for _, f := range base {
			c, err := model.Coefficient(f)
			if err != nil {
				return nil, err
			}
			coefs[f] = c
		}
		body := map[string]any{
			"response":     p.response,
			"lambda":       p.lambda,
			"intercept":    model.Intercept(),
			"coefficients": coefs,
		}
		if cats := model.CatFeatures(); len(cats) > 0 {
			// The cofactor form's interactions are continuous×category
			// (varying coefficients), not continuous pairs.
			body["cat_features"] = cats
		} else {
			pairs := make(map[string]float64)
			for i, f := range base {
				for _, g := range base[i:] {
					pc, err := model.PairCoefficient(f, g)
					if err != nil {
						return nil, err
					}
					pairs[f+"*"+g] = pc
				}
			}
			body["pair_coefficients"] = pairs
		}
		if pr != nil {
			pred, err := predictReg(model.Predict, model.PredictCat, snap, pr)
			if err != nil {
				return nil, err
			}
			body["prediction"] = pred
		}
		return body, nil
	case "pca":
		model, err := snap.TrainPCA(p.k)
		if err != nil {
			return nil, err
		}
		body := map[string]any{
			"features":    model.Features,
			"components":  model.Components,
			"eigenvalues": model.Eigenvalues,
			"means":       model.Means,
		}
		if pr != nil {
			proj, err := model.Project(pr.Values)
			if err != nil {
				return nil, err
			}
			body["projection"] = proj
		}
		return body, nil
	case "kmeans":
		model, err := snap.KMeansSeeds(p.k)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"features":       model.Features,
			"centers":        model.Centers,
			"total_variance": model.TotalVariance,
		}, nil
	case "chowliu":
		edges, err := snap.TrainChowLiu()
		if err != nil {
			return nil, err
		}
		rendered := make([]map[string]any, len(edges))
		for i, e := range edges {
			rendered[i] = map[string]any{"a": e.A, "b": e.B, "mi": e.MI}
		}
		return map[string]any{
			"cat_features": snap.CatFeatures(),
			"edges":        rendered,
		}, nil
	case "ctree":
		model, err := snap.TrainCTree(p.response, p.tree)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"response":     p.response,
			"cat_features": snap.CatFeatures(),
			"nodes":        model.Nodes(),
			"depth":        model.Depth(),
		}, nil
	case "svm":
		model, err := snap.TrainSVM(p.response, p.lambda)
		if err != nil {
			return nil, err
		}
		coefs := make(map[string]float64)
		for _, f := range model.Features() {
			if f == p.response {
				continue
			}
			c, err := model.Coefficient(f)
			if err != nil {
				return nil, err
			}
			coefs[f] = c
		}
		body := map[string]any{
			"label":        p.response,
			"lambda":       p.lambda,
			"bias":         model.Bias(),
			"coefficients": coefs,
			"cat_features": model.CatFeatures(),
		}
		if pr != nil {
			dv, err := model.DecisionValue(pr.Values, pr.Cats)
			if err != nil {
				return nil, err
			}
			cls, err := model.Classify(pr.Values, pr.Cats)
			if err != nil {
				return nil, err
			}
			body["decision"] = dv
			body["class"] = cls
		}
		return body, nil
	}
	return nil, fmt.Errorf("unknown model kind %q", p.kind)
}

// predictReg evaluates a trained regression on a predict object,
// routing to the categorical path when the snapshot maintains
// categorical features.
func predictReg(cont func(map[string]float64) (float64, error), cat func(map[string]float64, map[string]string) (float64, error), snap *borg.ServerSnapshot, pr *v1Predict) (float64, error) {
	if len(snap.CatFeatures()) > 0 {
		return cat(pr.Values, pr.Cats)
	}
	return cont(pr.Values)
}

// predictReq is the deprecated POST /predict body.
type predictReq struct {
	Kind     string             `json:"kind"`
	Response string             `json:"response,omitempty"`
	Lambda   *float64           `json:"lambda,omitempty"`
	K        int                `json:"k,omitempty"`
	Features map[string]float64 `json:"features"`
	Cats     map[string]string  `json:"cats,omitempty"`
}

// v1 maps a deprecated predict body onto the v1 request shape.
func (r predictReq) v1() (v1ModelReq, error) {
	if len(r.Features) == 0 {
		return v1ModelReq{}, fmt.Errorf(`predict needs a "features" object of feature values`)
	}
	return v1ModelReq{
		Kind:    r.Kind,
		Params:  v1Params{Response: r.Response, Lambda: r.Lambda, K: r.K},
		Predict: &v1Predict{Values: r.Features, Cats: r.Cats},
	}, nil
}

// modelStatus maps a training error onto its HTTP status: degenerate
// server STATE — an empty join, a ring payload the server was not
// started with — is 409 (the request was well-formed; the resource
// cannot satisfy it yet), a missing feature value in a predict body is
// 400, anything else is an internal 500.
func modelStatus(err error) int {
	switch {
	case errors.Is(err, borg.ErrEmptySnapshot), errors.Is(err, borg.ErrPayloadNotMaintained):
		return http.StatusConflict
	case errors.Is(err, borg.ErrMissingFeature):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// parseInserts accepts one op object or a JSON array of them, reporting
// which shape the body had (array bodies get per-row error reporting).
func parseInserts(body []byte) ([]insertReq, bool, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []insertReq
		if err := json.Unmarshal(body, &reqs); err != nil {
			return nil, true, fmt.Errorf("bad insert array: %v", err)
		}
		return reqs, true, nil
	}
	var one insertReq
	if err := json.Unmarshal(body, &one); err != nil {
		return nil, false, fmt.Errorf("bad insert body: %v", err)
	}
	return []insertReq{one}, false, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
