// Command borg-serve runs the streaming-serving layer as an HTTP JSON
// service over a multi-tenant demo retail schema:
//
//	Sales(item, store, units)   Items(item, store, price)   Stores(store, area)
//
// Every relation carries the tenant key "store", so the service shards
// horizontally: -shards N hash-partitions ingest by -partition-by
// (default "store") across N independent serving shards — each with its
// own IVM maintainer and single-writer queue — while /stats and /model
// serve ring-merged global views. Tuples stream in through POST /insert
// (inserts, deletes, and updates) while GET /stats and GET /model serve
// snapshot-consistent statistics and freshly trained models to any
// number of concurrent clients — writes never block reads and reads
// never block writes.
//
// Usage:
//
//	borg-serve -addr :8080 -strategy fivm -batch 64 -flush 1ms -shards 4 -partition-by store
//
// -pprof additionally mounts the Go runtime profiling endpoints under
// /debug/pprof/ (opt-in; exposes internals — keep it off on untrusted
// networks).
//
// API:
//
//	POST /insert    {"rel": "Sales", "values": ["patty", "s1", 3]}
//	                or a JSON array of such objects; values follow the
//	                schema (strings for categorical, numbers for
//	                continuous). Each object may carry "op": "insert"
//	                (default), "delete" (retract one equal-valued
//	                tuple), or "update" (retract "values", insert
//	                "new"). Responds {"queued": n}; if some array rows
//	                fail: 207 with per-row errors; if all fail: 400.
//	DELETE /insert  same body; every row is treated as a delete.
//	GET  /stats     {"epoch", "inserts", "deletes", "queued", "count",
//	                 "means": {...}, "shards": [{"shard", "epoch",
//	                 "inserts", "deletes", "queued", "count"}, ...],
//	                 "last_error": null | "..."}
//	                The top-level fields aggregate across shards (epoch
//	                is the sum of shard epochs); "shards" reports each
//	                shard's own epoch and queue depth. last_error
//	                reports the first asynchronous maintenance failure
//	                (e.g. a delete whose target was never live) on any
//	                shard, which cannot be reported on the insert
//	                response.
//	GET  /model?kind=linreg|pca|polyreg|kmeans&...
//	                The snapshot model zoo: every kind trains purely from
//	                the current epoch's ring statistics (ring-merged
//	                across shards), identical to an unsharded model.
//	                  kind=linreg  (default): ?response=units&lambda=0.001
//	                    &max_iters=50000&tol=1e-10 →
//	                    {"epoch", "count", "response", "lambda",
//	                     "intercept", "coefficients", "converged",
//	                     "iterations"}
//	                  kind=polyreg: ?response=units&lambda=0.001 →
//	                    linear + "pair_coefficients" (requires -lifted)
//	                  kind=pca: ?k=2 →
//	                    {"components", "eigenvalues", "means"}
//	                  kind=kmeans: ?k=3 →
//	                    {"centers", "total_variance"}
//	                Bad kinds or query params are 400; an empty join (no
//	                model to train — the degenerate-snapshot contract) is
//	                409, never a 200 with NaNs in the body.
//	POST /predict   {"kind": "linreg|polyreg", "response": "units",
//	                 "lambda": 0.001, "features": {"price": 6, "area": 120}}
//	                → {"prediction": ...}; kind=pca projects instead:
//	                {"kind": "pca", "k": 2, "features": {...}} →
//	                {"projection": [...]}.
//	GET  /healthz   200 {"status": "ok"}
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"net/url"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"borg"
)

var features = []string{"units", "price", "area"}

type insertReq struct {
	Rel    string `json:"rel"`
	Values []any  `json:"values"`
	// Op selects the operation: "insert" (default), "delete", or
	// "update" (retract Values, insert New).
	Op  string `json:"op,omitempty"`
	New []any  `json:"new,omitempty"`
}

// apply routes one request row to the server. forceDelete is the
// DELETE-method path, where every row retracts regardless of Op.
func (r insertReq) apply(srv *borg.ShardedServer, forceDelete bool) error {
	op := r.Op
	if forceDelete {
		if op != "" && op != "delete" {
			return fmt.Errorf("op %q not allowed on DELETE /insert", op)
		}
		op = "delete"
	}
	switch op {
	case "", "insert":
		return srv.Insert(r.Rel, r.Values...)
	case "delete":
		return srv.Delete(r.Rel, r.Values...)
	case "update":
		if r.New == nil {
			return fmt.Errorf("update for %s is missing the \"new\" values", r.Rel)
		}
		return srv.Update(r.Rel, r.Values, r.New)
	default:
		return fmt.Errorf("unknown op %q (want insert, delete, or update)", op)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	strategy := flag.String("strategy", "fivm", "IVM strategy: fivm, higher-order, first-order")
	batch := flag.Int("batch", 64, "inserts per snapshot publication")
	flush := flag.Duration("flush", time.Millisecond, "max snapshot staleness for a partial batch")
	queue := flag.Int("queue", 1024, "ingest queue depth (backpressure beyond it)")
	workers := flag.Int("workers", 2, "exec worker pool size for maintenance scans")
	lifted := flag.Bool("lifted", true, "maintain the lifted degree-2 ring so kind=polyreg can train (constant-factor maintenance cost)")
	shards := flag.Int("shards", 1, "serving shards; ingest is hash-partitioned across them and reads are ring-merged")
	partitionBy := flag.String("partition-by", "store", "partition attribute (must appear in every relation of the join)")
	oneShot := flag.Bool("oneshot", false, "start, self-check the endpoints, and exit (CI smoke)")
	pprofOn := flag.Bool("pprof", false, "expose Go runtime profiling under /debug/pprof/ (opt-in; do not enable on untrusted networks)")
	flag.Parse()

	db := borg.NewDatabase()
	db.AddRelation("Sales", borg.Cat("item"), borg.Cat("store"), borg.Num("units"))
	db.AddRelation("Items", borg.Cat("item"), borg.Cat("store"), borg.Num("price"))
	db.AddRelation("Stores", borg.Cat("store"), borg.Num("area"))
	q, err := db.Query()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := q.ServeSharded(features, borg.ShardOptions{
		ServerOptions: borg.ServerOptions{
			Strategy:      *strategy,
			BatchSize:     *batch,
			FlushInterval: *flush,
			QueueDepth:    *queue,
			Workers:       *workers,
			Lifted:        *lifted,
		},
		Shards:      *shards,
		PartitionBy: *partitionBy,
	})
	if err != nil {
		log.Fatal(err)
	}

	handler := newHandler(srv)
	if *pprofOn {
		handler = withPprof(handler)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	if *oneShot {
		if err := selfCheck(srv, httpSrv.Handler); err != nil {
			log.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("borg-serve: one-shot self-check passed")
		return
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		shutCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		_ = httpSrv.Shutdown(shutCtx)
	}()
	log.Printf("borg-serve: %s strategy, %d shard(s) partitioned by %q, listening on %s", *strategy, srv.NumShards(), *partitionBy, *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := srv.Flush(); err != nil {
		log.Printf("borg-serve: flush: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}

// selfCheck drives every endpoint once through the handler (no network),
// so CI can smoke-test the whole service path in one process — at any
// shard count, since the endpoints are shard-transparent.
func selfCheck(srv *borg.ShardedServer, h http.Handler) error {
	do := func(method, path, body string) (int, string) {
		req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	count := func() (float64, error) {
		if err := srv.Flush(); err != nil {
			return 0, err
		}
		code, body := do("GET", "/stats", "")
		if code != http.StatusOK {
			return 0, fmt.Errorf("stats: %d %s", code, body)
		}
		var stats struct {
			Count   float64 `json:"count"`
			Deletes uint64  `json:"deletes"`
			Queued  int     `json:"queued"`
			Shards  []struct {
				Shard  int `json:"shard"`
				Queued int `json:"queued"`
			} `json:"shards"`
		}
		if err := json.Unmarshal([]byte(body), &stats); err != nil {
			return 0, fmt.Errorf("stats body: %v", err)
		}
		if len(stats.Shards) != srv.NumShards() {
			return 0, fmt.Errorf("stats reports %d shard rows, want %d: %s", len(stats.Shards), srv.NumShards(), body)
		}
		// After the Flush barrier every shard's queue is drained.
		if stats.Queued != 0 {
			return 0, fmt.Errorf("queued = %d after flush: %s", stats.Queued, body)
		}
		return stats.Count, nil
	}
	// The degenerate-snapshot contract, before anything streams in: an
	// empty join trains NO model of any kind — 409, never a 200 carrying
	// NaNs — while /stats stays a healthy 200 reporting count 0.
	for _, kind := range []string{"linreg", "pca", "polyreg", "kmeans"} {
		code, body := do("GET", "/model?kind="+kind, "")
		if code != http.StatusConflict {
			return fmt.Errorf("model kind=%s on empty join: %d %s, want 409", kind, code, body)
		}
		if strings.Contains(body, "NaN") {
			return fmt.Errorf("model kind=%s on empty join leaked NaN: %s", kind, body)
		}
	}
	if c, err := count(); err != nil || c != 0 {
		return fmt.Errorf("stats on empty join = %v, want 0 (%v)", c, err)
	}

	if code, body := do("POST", "/insert", `[
		{"rel": "Items", "values": ["patty", "s1", 6]},
		{"rel": "Stores", "values": ["s1", 120]},
		{"rel": "Sales", "values": ["patty", "s1", 3]},
		{"rel": "Sales", "values": ["patty", "s1", 5]}
	]`); code != http.StatusOK {
		return fmt.Errorf("insert: %d %s", code, body)
	}
	if c, err := count(); err != nil || c != 2 {
		return fmt.Errorf("count after inserts = %v, want 2 (%v)", c, err)
	}

	// The model zoo: every kind trains from the same epoch statistics.
	var linreg struct {
		Converged  bool `json:"converged"`
		Iterations int  `json:"iterations"`
	}
	code, body := do("GET", "/model?response=units&lambda=0.001", "")
	if code != http.StatusOK {
		return fmt.Errorf("model: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &linreg); err != nil || !linreg.Converged {
		return fmt.Errorf("linreg convergence not reported: %s (%v)", body, err)
	}
	zoo := []string{"kind=pca&k=2", "kind=kmeans&k=3", "kind=linreg&max_iters=20000&tol=1e-8"}
	if srv.CovarSnapshot().Lifted() {
		zoo = append(zoo, "kind=polyreg&response=units")
	} else if code, body := do("GET", "/model?kind=polyreg", ""); code != http.StatusConflict {
		return fmt.Errorf("polyreg without -lifted: %d %s, want 409", code, body)
	}
	for _, q := range zoo {
		if code, body := do("GET", "/model?"+q, ""); code != http.StatusOK {
			return fmt.Errorf("model?%s: %d %s", q, code, body)
		}
	}
	// Malformed model queries are client errors (400), not server faults.
	for _, q := range []string{
		"kind=transformer", "kind=pca&k=zero", "kind=kmeans&k=-3",
		"lambda=banana", "response=ghost", "kind=linreg&max_iters=0", "tol=-1",
	} {
		if code, body := do("GET", "/model?"+q, ""); code != http.StatusBadRequest {
			return fmt.Errorf("model?%s: %d %s, want 400", q, code, body)
		}
	}
	// Prediction round trips: regression kinds predict, pca projects.
	var pred struct {
		Prediction float64 `json:"prediction"`
	}
	regKind := "linreg"
	if srv.CovarSnapshot().Lifted() {
		regKind = "polyreg"
	}
	code, body = do("POST", "/predict", `{"kind": "`+regKind+`", "response": "units", "features": {"price": 6, "area": 120}}`)
	if code != http.StatusOK {
		return fmt.Errorf("predict %s: %d %s", regKind, code, body)
	}
	if err := json.Unmarshal([]byte(body), &pred); err != nil {
		return fmt.Errorf("predict body: %v", err)
	}
	if code, body := do("POST", "/predict", `{"kind": "pca", "k": 1, "features": {"units": 4, "price": 6, "area": 120}}`); code != http.StatusOK || !strings.Contains(body, "projection") {
		return fmt.Errorf("predict pca: %d %s", code, body)
	}
	if code, body := do("POST", "/predict", `{"kind": "linreg", "features": {"price": 6}}`); code != http.StatusBadRequest {
		return fmt.Errorf("predict with missing feature: %d %s, want 400", code, body)
	}
	if code, body := do("POST", "/predict", `{"kind": "kmeans", "features": {"price": 6}}`); code != http.StatusBadRequest {
		return fmt.Errorf("predict kmeans: %d %s, want 400", code, body)
	}
	if code, body := do("GET", "/healthz", ""); code != http.StatusOK {
		return fmt.Errorf("healthz: %d %s", code, body)
	}
	if code, body := do("POST", "/insert", `{"rel": "Nope", "values": []}`); code != http.StatusUnprocessableEntity {
		return fmt.Errorf("bad insert accepted: %d %s", code, body)
	}

	// Retraction path: an op:"delete" row, an op:"update" correction,
	// and the DELETE method all maintain the same statistics.
	if code, body := do("POST", "/insert", `{"rel": "Sales", "values": ["patty", "s1", 5], "op": "delete"}`); code != http.StatusOK {
		return fmt.Errorf("delete op: %d %s", code, body)
	}
	if c, err := count(); err != nil || c != 1 {
		return fmt.Errorf("count after delete = %v, want 1 (%v)", c, err)
	}
	if code, body := do("POST", "/insert", `{"rel": "Sales", "values": ["patty", "s1", 3], "op": "update", "new": ["patty", "s1", 7]}`); code != http.StatusOK {
		return fmt.Errorf("update op: %d %s", code, body)
	}
	if c, err := count(); err != nil || c != 1 {
		return fmt.Errorf("count after update = %v, want 1 (%v)", c, err)
	}
	if m, err := srv.Mean("units"); err != nil || m != 7 {
		return fmt.Errorf("mean(units) after update = %v, want 7 (%v)", m, err)
	}
	if code, body := do("DELETE", "/insert", `{"rel": "Sales", "values": ["patty", "s1", 7]}`); code != http.StatusOK {
		return fmt.Errorf("DELETE method: %d %s", code, body)
	}
	if c, err := count(); err != nil || c != 0 {
		return fmt.Errorf("count after DELETE = %v, want 0 (%v)", c, err)
	}
	if code, body := do("DELETE", "/insert", `{"rel": "Sales", "values": ["x", "y", 1], "op": "insert"}`); code != http.StatusUnprocessableEntity {
		return fmt.Errorf("insert op on DELETE method accepted: %d %s", code, body)
	}

	// Array status semantics: partial failure is 207 with per-row
	// errors, total failure is 400 — never a blanket 200.
	code, body = do("POST", "/insert", `[
		{"rel": "Items", "values": ["bun", "s1", 2]},
		{"rel": "Nope", "values": []}
	]`)
	if code != http.StatusMultiStatus {
		return fmt.Errorf("partial-failure array: %d %s, want 207", code, body)
	}
	var partial struct {
		Queued int `json:"queued"`
		Failed int `json:"failed"`
		Errors []struct {
			Index int    `json:"index"`
			Error string `json:"error"`
		} `json:"errors"`
	}
	if err := json.Unmarshal([]byte(body), &partial); err != nil {
		return fmt.Errorf("partial-failure body: %v", err)
	}
	if partial.Queued != 1 || partial.Failed != 1 || len(partial.Errors) != 1 || partial.Errors[0].Index != 1 {
		return fmt.Errorf("partial-failure payload wrong: %s", body)
	}
	if code, body := do("POST", "/insert", `[{"rel": "Nope", "values": []}, {"rel": "Sales", "values": []}]`); code != http.StatusBadRequest {
		return fmt.Errorf("all-failed array: %d %s, want 400", code, body)
	}

	// Churned-to-empty is the same degenerate state as never-populated:
	// every Sales row was retracted above, so the join is empty again and
	// every trainer must refuse with 409 — the bug class this release
	// fixes is exactly a 200 full of NaNs here.
	for _, kind := range []string{"linreg", "pca", "polyreg", "kmeans"} {
		code, body := do("GET", "/model?kind="+kind, "")
		if code != http.StatusConflict {
			return fmt.Errorf("model kind=%s on churned-to-empty join: %d %s, want 409", kind, code, body)
		}
	}
	return nil
}

// withPprof mounts the Go runtime profiling endpoints beside the
// service handler — CPU and heap profiles of a live ingest under
// /debug/pprof/, the standard way to see where a slow multi-core
// ingest actually spends its time. Opt-in via -pprof only: the
// endpoints expose internals and cost CPU while profiling.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

// newHandler wires the endpoints over a running (possibly sharded)
// server.
func newHandler(srv *borg.ShardedServer) http.Handler {
	mux := http.NewServeMux()
	ingest := func(forceDelete bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			reqs, isArray, err := parseInserts(body)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			// Array bodies are applied item by item, not atomically:
			// every row is attempted and the response carries per-row
			// errors, so clients retry exactly the failed rows. The
			// status distinguishes total failure (400), partial failure
			// (207), and success (200); a failing single-object body
			// stays 422 as before.
			type rowErr struct {
				Index int    `json:"index"`
				Error string `json:"error"`
			}
			var errs []rowErr
			for i, req := range reqs {
				if err := req.apply(srv, forceDelete); err != nil {
					errs = append(errs, rowErr{Index: i, Error: err.Error()})
				}
			}
			queued := len(reqs) - len(errs)
			switch {
			case len(errs) == 0:
				writeJSON(w, http.StatusOK, map[string]any{"queued": queued})
			case !isArray:
				writeJSON(w, http.StatusUnprocessableEntity, map[string]any{"error": errs[0].Error, "queued": 0})
			case queued == 0:
				writeJSON(w, http.StatusBadRequest, map[string]any{"queued": 0, "failed": len(errs), "errors": errs})
			default:
				writeJSON(w, http.StatusMultiStatus, map[string]any{"queued": queued, "failed": len(errs), "errors": errs})
			}
		}
	}
	mux.HandleFunc("POST /insert", ingest(false))
	mux.HandleFunc("DELETE /insert", ingest(true))
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		// One merged snapshot feeds every aggregate field, so those
		// counters are mutually consistent; "queued" and the per-shard
		// rows are inherently live readings taken alongside (each shard
		// row is itself consistent — one snapshot load per shard).
		snap := srv.CovarSnapshot()
		means := make(map[string]float64, len(features))
		for _, f := range features {
			m, err := snap.Mean(f)
			if errors.Is(err, borg.ErrEmptySnapshot) {
				// /stats is a health view, not a trainer: an empty join is
				// a normal state here, reported as count 0 with zero means
				// rather than an error status.
				m = 0
			} else if err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			means[f] = m
		}
		st := srv.Stats()
		shardRows := make([]map[string]any, len(st.Shards))
		for i, row := range st.Shards {
			shardRows[i] = map[string]any{
				"shard":   i,
				"epoch":   row.Epoch,
				"inserts": row.Inserts,
				"deletes": row.Deletes,
				"queued":  row.Queued,
				"count":   row.Count,
			}
		}
		var lastErr any
		if err := srv.Err(); err != nil {
			lastErr = err.Error()
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch":      snap.Epoch(),
			"inserts":    snap.Inserts(),
			"deletes":    snap.Deletes(),
			"queued":     st.Queued,
			"count":      snap.Count(),
			"means":      means,
			"shards":     shardRows,
			"last_error": lastErr,
		})
	})
	mux.HandleFunc("GET /model", func(w http.ResponseWriter, r *http.Request) {
		p, err := parseModelParams(r.URL.Query())
		if err != nil {
			// Malformed client input — unknown kind, unknown response
			// attribute, unparsable numbers — is 400, not 500: nothing
			// broke on the server.
			httpError(w, http.StatusBadRequest, err)
			return
		}
		snap := srv.CovarSnapshot()
		body, err := trainModel(snap, p)
		if err != nil {
			httpError(w, modelStatus(err), err)
			return
		}
		body["epoch"] = snap.Epoch()
		body["count"] = snap.Count()
		body["kind"] = p.kind
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var req predictReq
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad predict body: %v", err))
			return
		}
		p, err := req.params()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		snap := srv.CovarSnapshot()
		out, err := predict(snap, p, req.Features)
		if err != nil {
			httpError(w, modelStatus(err), err)
			return
		}
		out["epoch"] = snap.Epoch()
		out["kind"] = p.kind
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// modelParams is the validated parameter set of one model-zoo request.
type modelParams struct {
	kind     string
	response string
	lambda   float64
	k        int
	gd       borg.GDOptions
}

// parseModelParams validates the /model query: every malformed or
// unknown input is rejected here, so the handler can map parse failures
// to 400 uniformly.
func parseModelParams(q url.Values) (modelParams, error) {
	p := modelParams{kind: q.Get("kind"), response: q.Get("response"), lambda: 1e-3, k: 2}
	if p.kind == "" {
		p.kind = "linreg"
	}
	switch p.kind {
	case "linreg", "polyreg", "pca", "kmeans":
	default:
		return p, fmt.Errorf("unknown model kind %q (want linreg, polyreg, pca, or kmeans)", p.kind)
	}
	if p.response == "" {
		p.response = "units"
	}
	if p.kind == "linreg" || p.kind == "polyreg" {
		ok := false
		for _, f := range features {
			ok = ok || f == p.response
		}
		if !ok {
			return p, fmt.Errorf("unknown response attribute %q (maintained features: %v)", p.response, features)
		}
	}
	var err error
	if s := q.Get("lambda"); s != "" {
		if p.lambda, err = strconv.ParseFloat(s, 64); err != nil || p.lambda < 0 {
			return p, fmt.Errorf("bad lambda %q: want a non-negative number", s)
		}
	}
	if s := q.Get("k"); s != "" {
		if p.k, err = strconv.Atoi(s); err != nil || p.k < 1 {
			return p, fmt.Errorf("bad k %q: want an integer >= 1", s)
		}
	}
	if s := q.Get("max_iters"); s != "" {
		if p.gd.MaxIters, err = strconv.Atoi(s); err != nil || p.gd.MaxIters < 1 {
			return p, fmt.Errorf("bad max_iters %q: want an integer >= 1", s)
		}
	}
	if s := q.Get("tol"); s != "" {
		if p.gd.Tol, err = strconv.ParseFloat(s, 64); err != nil || p.gd.Tol <= 0 {
			return p, fmt.Errorf("bad tol %q: want a positive number", s)
		}
	}
	return p, nil
}

// trainModel trains one model-zoo kind on a frozen snapshot and renders
// its JSON body (without the shared epoch/count/kind envelope).
func trainModel(snap *borg.ServerSnapshot, p modelParams) (map[string]any, error) {
	switch p.kind {
	case "linreg":
		model, err := snap.TrainLinRegGD(p.response, p.lambda, p.gd)
		if err != nil {
			return nil, err
		}
		coefs := make(map[string]float64)
		for _, f := range features {
			if f == p.response {
				continue
			}
			c, err := model.Coefficient(f)
			if err != nil {
				return nil, err
			}
			coefs[f] = c
		}
		return map[string]any{
			"response":     p.response,
			"lambda":       p.lambda,
			"intercept":    model.Intercept(),
			"coefficients": coefs,
			"converged":    model.Converged(),
			"iterations":   model.IterationsRun(),
		}, nil
	case "polyreg":
		model, err := snap.TrainPolyReg(p.response, p.lambda)
		if err != nil {
			return nil, err
		}
		coefs := make(map[string]float64)
		pairs := make(map[string]float64)
		base := model.Features()
		for i, f := range base {
			c, err := model.Coefficient(f)
			if err != nil {
				return nil, err
			}
			coefs[f] = c
			for _, g := range base[i:] {
				pc, err := model.PairCoefficient(f, g)
				if err != nil {
					return nil, err
				}
				pairs[f+"*"+g] = pc
			}
		}
		return map[string]any{
			"response":          p.response,
			"lambda":            p.lambda,
			"intercept":         model.Intercept(),
			"coefficients":      coefs,
			"pair_coefficients": pairs,
		}, nil
	case "pca":
		model, err := snap.TrainPCA(p.k)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"features":    model.Features,
			"components":  model.Components,
			"eigenvalues": model.Eigenvalues,
			"means":       model.Means,
		}, nil
	case "kmeans":
		model, err := snap.KMeansSeeds(p.k)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"features":       model.Features,
			"centers":        model.Centers,
			"total_variance": model.TotalVariance,
		}, nil
	}
	return nil, fmt.Errorf("unknown model kind %q", p.kind)
}

// predictReq is the POST /predict body.
type predictReq struct {
	Kind     string             `json:"kind"`
	Response string             `json:"response,omitempty"`
	Lambda   *float64           `json:"lambda,omitempty"`
	K        int                `json:"k,omitempty"`
	Features map[string]float64 `json:"features"`
}

// params maps a predict body onto the validated model parameter set.
func (r predictReq) params() (modelParams, error) {
	q := url.Values{}
	if r.Kind != "" {
		q.Set("kind", r.Kind)
	}
	if r.Response != "" {
		q.Set("response", r.Response)
	}
	if r.Lambda != nil {
		q.Set("lambda", strconv.FormatFloat(*r.Lambda, 'g', -1, 64))
	}
	if r.K != 0 {
		q.Set("k", strconv.Itoa(r.K))
	}
	p, err := parseModelParams(q)
	if err != nil {
		return p, err
	}
	if p.kind == "kmeans" {
		return p, fmt.Errorf("kind %q has no prediction; use linreg, polyreg, or pca", p.kind)
	}
	if len(r.Features) == 0 {
		return p, fmt.Errorf(`predict needs a "features" object of feature values`)
	}
	return p, nil
}

// predict trains the requested kind on the frozen snapshot and evaluates
// it on the given feature values.
func predict(snap *borg.ServerSnapshot, p modelParams, vals map[string]float64) (map[string]any, error) {
	for f := range vals {
		known := false
		for _, g := range features {
			known = known || f == g
		}
		if !known {
			return nil, fmt.Errorf("unknown feature %q (maintained features: %v)", f, features)
		}
	}
	switch p.kind {
	case "linreg":
		model, err := snap.TrainLinRegGD(p.response, p.lambda, p.gd)
		if err != nil {
			return nil, err
		}
		pred, err := model.Predict(vals)
		if err != nil {
			return nil, err
		}
		return map[string]any{"response": p.response, "prediction": pred}, nil
	case "polyreg":
		model, err := snap.TrainPolyReg(p.response, p.lambda)
		if err != nil {
			return nil, err
		}
		pred, err := model.Predict(vals)
		if err != nil {
			return nil, err
		}
		return map[string]any{"response": p.response, "prediction": pred}, nil
	case "pca":
		model, err := snap.TrainPCA(p.k)
		if err != nil {
			return nil, err
		}
		proj, err := model.Project(vals)
		if err != nil {
			return nil, err
		}
		return map[string]any{"projection": proj}, nil
	}
	return nil, fmt.Errorf("kind %q has no prediction", p.kind)
}

// modelStatus maps a training error onto its HTTP status: degenerate
// server STATE — an empty join, lifted statistics not maintained — is
// 409 (the request was well-formed; the resource cannot satisfy it
// yet), a missing feature value in a predict body is 400, anything else
// is an internal 500.
func modelStatus(err error) int {
	switch {
	case errors.Is(err, borg.ErrEmptySnapshot), errors.Is(err, borg.ErrLiftedNotMaintained):
		return http.StatusConflict
	case errors.Is(err, borg.ErrMissingFeature):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// parseInserts accepts one op object or a JSON array of them, reporting
// which shape the body had (array bodies get per-row error reporting).
func parseInserts(body []byte) ([]insertReq, bool, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []insertReq
		if err := json.Unmarshal(body, &reqs); err != nil {
			return nil, true, fmt.Errorf("bad insert array: %v", err)
		}
		return reqs, true, nil
	}
	var one insertReq
	if err := json.Unmarshal(body, &one); err != nil {
		return nil, false, fmt.Errorf("bad insert body: %v", err)
	}
	return []insertReq{one}, false, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
