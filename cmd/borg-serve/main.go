// Command borg-serve runs the streaming-serving layer as an HTTP JSON
// service over a demo retail schema:
//
//	Sales(item, store, units)   Items(item, price)   Stores(store, area)
//
// Tuples stream in through POST /insert while GET /stats and GET /model
// serve snapshot-consistent statistics and freshly trained models to any
// number of concurrent clients — inserts never block reads and reads
// never block inserts.
//
// Usage:
//
//	borg-serve -addr :8080 -strategy fivm -batch 64 -flush 1ms
//
// API:
//
//	POST /insert   {"rel": "Sales", "values": ["patty", "s1", 3]}
//	               or a JSON array of such objects; values follow the
//	               schema (strings for categorical, numbers for
//	               continuous). Responds {"queued": n}.
//	GET  /stats    {"epoch", "inserts", "queued", "count", "means": {...}}
//	GET  /model?response=units&lambda=0.001
//	               {"epoch", "count", "response", "intercept",
//	                "coefficients": {...}}
//	GET  /healthz  200 {"status": "ok"}
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"borg"
)

var features = []string{"units", "price", "area"}

type insertReq struct {
	Rel    string `json:"rel"`
	Values []any  `json:"values"`
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	strategy := flag.String("strategy", "fivm", "IVM strategy: fivm, higher-order, first-order")
	batch := flag.Int("batch", 64, "inserts per snapshot publication")
	flush := flag.Duration("flush", time.Millisecond, "max snapshot staleness for a partial batch")
	queue := flag.Int("queue", 1024, "ingest queue depth (backpressure beyond it)")
	workers := flag.Int("workers", 2, "exec worker pool size for maintenance scans")
	oneShot := flag.Bool("oneshot", false, "start, self-check the endpoints, and exit (CI smoke)")
	flag.Parse()

	db := borg.NewDatabase()
	db.AddRelation("Sales", borg.Cat("item"), borg.Cat("store"), borg.Num("units"))
	db.AddRelation("Items", borg.Cat("item"), borg.Num("price"))
	db.AddRelation("Stores", borg.Cat("store"), borg.Num("area"))
	q, err := db.Query()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := q.Serve(features, borg.ServerOptions{
		Strategy:      *strategy,
		BatchSize:     *batch,
		FlushInterval: *flush,
		QueueDepth:    *queue,
		Workers:       *workers,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: newHandler(srv)}
	if *oneShot {
		if err := selfCheck(srv, httpSrv.Handler); err != nil {
			log.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("borg-serve: one-shot self-check passed")
		return
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		shutCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		_ = httpSrv.Shutdown(shutCtx)
	}()
	log.Printf("borg-serve: %s strategy, listening on %s", *strategy, *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := srv.Flush(); err != nil {
		log.Printf("borg-serve: flush: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}

// selfCheck drives every endpoint once through the handler (no network),
// so CI can smoke-test the whole service path in one process.
func selfCheck(srv *borg.Server, h http.Handler) error {
	do := func(method, path, body string) (int, string) {
		req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	if code, body := do("POST", "/insert", `[
		{"rel": "Items", "values": ["patty", 6]},
		{"rel": "Stores", "values": ["s1", 120]},
		{"rel": "Sales", "values": ["patty", "s1", 3]},
		{"rel": "Sales", "values": ["patty", "s1", 5]}
	]`); code != http.StatusOK {
		return fmt.Errorf("insert: %d %s", code, body)
	}
	if err := srv.Flush(); err != nil {
		return err
	}
	code, body := do("GET", "/stats", "")
	if code != http.StatusOK {
		return fmt.Errorf("stats: %d %s", code, body)
	}
	var stats struct {
		Count float64 `json:"count"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		return fmt.Errorf("stats body: %v", err)
	}
	if stats.Count != 2 {
		return fmt.Errorf("stats count = %v, want 2", stats.Count)
	}
	if code, body := do("GET", "/model?response=units&lambda=0.001", ""); code != http.StatusOK {
		return fmt.Errorf("model: %d %s", code, body)
	}
	if code, body := do("GET", "/healthz", ""); code != http.StatusOK {
		return fmt.Errorf("healthz: %d %s", code, body)
	}
	if code, body := do("POST", "/insert", `{"rel": "Nope", "values": []}`); code != http.StatusUnprocessableEntity {
		return fmt.Errorf("bad insert accepted: %d %s", code, body)
	}
	return nil
}

// newHandler wires the three endpoints over a running server.
func newHandler(srv *borg.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /insert", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		reqs, err := parseInserts(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// Array bodies are applied item by item, not atomically: on a
		// mid-array failure the response reports how many items were
		// already queued, so clients retry only the remainder.
		for i, req := range reqs {
			if err := srv.Insert(req.Rel, req.Values...); err != nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusUnprocessableEntity)
				_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "queued": i})
				return
			}
		}
		writeJSON(w, map[string]any{"queued": len(reqs)})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		snap := srv.CovarSnapshot()
		st := srv.Stats()
		means := make(map[string]float64, len(features))
		for _, f := range features {
			m, err := snap.Mean(f)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			means[f] = m
		}
		writeJSON(w, map[string]any{
			"epoch":   snap.Epoch(),
			"inserts": snap.Inserts(),
			"queued":  st.Queued,
			"count":   snap.Count(),
			"means":   means,
		})
	})
	mux.HandleFunc("GET /model", func(w http.ResponseWriter, r *http.Request) {
		response := r.URL.Query().Get("response")
		if response == "" {
			response = "units"
		}
		lambda := 1e-3
		if s := r.URL.Query().Get("lambda"); s != "" {
			var err error
			if lambda, err = strconv.ParseFloat(s, 64); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad lambda: %v", err))
				return
			}
		}
		snap := srv.CovarSnapshot()
		if snap.Count() == 0 {
			httpError(w, http.StatusConflict, fmt.Errorf("join is empty: no model yet"))
			return
		}
		model, err := snap.TrainLinReg(response, lambda)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		coefs := make(map[string]float64)
		for _, f := range features {
			if f == response {
				continue
			}
			c, err := model.Coefficient(f)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			coefs[f] = c
		}
		writeJSON(w, map[string]any{
			"epoch":        snap.Epoch(),
			"count":        snap.Count(),
			"response":     response,
			"lambda":       lambda,
			"intercept":    model.Intercept(),
			"coefficients": coefs,
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	return mux
}

// parseInserts accepts one insert object or a JSON array of them.
func parseInserts(body []byte) ([]insertReq, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []insertReq
		if err := json.Unmarshal(body, &reqs); err != nil {
			return nil, fmt.Errorf("bad insert array: %v", err)
		}
		return reqs, nil
	}
	var one insertReq
	if err := json.Unmarshal(body, &one); err != nil {
		return nil, fmt.Errorf("bad insert body: %v", err)
	}
	return []insertReq{one}, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
