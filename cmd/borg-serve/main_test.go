package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"borg"
)

// newTestService starts a small sharded server behind the HTTP handler,
// mirroring main()'s wiring with an injectable queue reading.
func newTestService(t *testing.T, shards int) (*service, http.Handler) {
	t.Helper()
	db := borg.NewDatabase()
	db.AddRelation("Sales", borg.Cat("item"), borg.Cat("store"), borg.Num("units"))
	db.AddRelation("Items", borg.Cat("item"), borg.Cat("store"), borg.Num("price"))
	db.AddRelation("Stores", borg.Cat("store"), borg.Num("area"))
	q, err := db.Query()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := q.ServeSharded([]string{"units", "price", "area"}, borg.ShardOptions{
		ServerOptions: borg.ServerOptions{Payload: borg.PayloadCovar, Workers: 1},
		Shards:        shards,
		PartitionBy:   "store",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	svc := &service{srv: srv, queueLen: srv.QueueLen, highWater: 8}
	return svc, newHandler(svc)
}

// TestReadyzTransitions drives /readyz through its three states: ready
// under normal load, 503 "overloaded" while the queue reads over the
// high-water mark, and 503 "draining" once shutdown flips the flag —
// while /healthz stays 200 throughout, being pure liveness.
func TestReadyzTransitions(t *testing.T) {
	svc, h := newTestService(t, 1)

	code, body, _ := doHeader(h, "GET", "/readyz", "")
	if code != http.StatusOK || !strings.Contains(body, `"ready"`) {
		t.Fatalf("fresh server readyz = %d %s, want 200 ready", code, body)
	}

	// Overload: the queue reads above the high-water mark.
	svc.queueLen = func() int { return svc.highWater + 1 }
	code, body, _ = doHeader(h, "GET", "/readyz", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"overloaded"`) {
		t.Fatalf("overloaded readyz = %d %s, want 503 overloaded", code, body)
	}
	var over struct {
		Queued    int `json:"queued"`
		HighWater int `json:"high_water"`
	}
	if err := json.Unmarshal([]byte(body), &over); err != nil {
		t.Fatalf("overloaded body: %v", err)
	}
	if over.Queued != svc.highWater+1 || over.HighWater != svc.highWater {
		t.Fatalf("overloaded body carries queued=%d high_water=%d, want %d and %d",
			over.Queued, over.HighWater, svc.highWater+1, svc.highWater)
	}
	if code, _, _ := doHeader(h, "GET", "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz degraded under load: %d, want 200", code)
	}

	// Exactly at the mark is still ready — the boundary is exclusive.
	svc.queueLen = func() int { return svc.highWater }
	if code, body, _ := doHeader(h, "GET", "/readyz", ""); code != http.StatusOK {
		t.Fatalf("readyz at high water = %d %s, want 200", code, body)
	}

	// Drained: back to ready.
	svc.queueLen = func() int { return 0 }
	if code, body, _ := doHeader(h, "GET", "/readyz", ""); code != http.StatusOK {
		t.Fatalf("drained readyz = %d %s, want 200", code, body)
	}

	// Draining for shutdown wins over an empty queue.
	svc.draining.Store(true)
	code, body, _ = doHeader(h, "GET", "/readyz", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"draining"`) {
		t.Fatalf("draining readyz = %d %s, want 503 draining", code, body)
	}
	if code, _, _ := doHeader(h, "GET", "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz degraded while draining: %d, want 200", code)
	}
}

// TestMetricsEndpoint checks the exposition endpoint end to end over a
// sharded server: content type, per-shard labelled series, and the
// /stats metrics block mirroring the registry.
func TestMetricsEndpoint(t *testing.T) {
	svc, h := newTestService(t, 2)
	if code, body, _ := doHeader(h, "POST", "/insert", `[
		{"rel": "Sales", "values": ["patty", "s1", 3]},
		{"rel": "Sales", "values": ["bun", "s2", 4]},
		{"rel": "Items", "values": ["patty", "s1", 6]}
	]`); code != http.StatusOK {
		t.Fatalf("insert: %d %s", code, body)
	}
	if err := svc.srv.Flush(); err != nil {
		t.Fatal(err)
	}

	code, body, hdr := doHeader(h, "GET", "/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		`borg_shard_routed_total{shard="0"}`,
		`borg_shard_routed_total{shard="1"}`,
		`borg_serve_inserts_total{shard="0"}`,
		"borg_shard_skew",
		"# TYPE borg_serve_queue_wait_ns histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	code, body, _ = doHeader(h, "GET", "/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st struct {
		Metrics []struct {
			Name string `json:"name"`
			Type string `json:"type"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	if len(st.Metrics) < 15 {
		t.Fatalf("stats metrics block has %d series, want >= 15", len(st.Metrics))
	}
	names := make(map[string]bool)
	for _, p := range st.Metrics {
		names[p.Name] = true
	}
	for _, want := range []string{"borg_serve_queue_wait_ns", "borg_shard_skew", "borg_plan_drift"} {
		if !names[want] {
			t.Errorf("stats metrics block missing %s", want)
		}
	}
}

// TestOneshotSelfCheck runs the full CI smoke in-process at an
// interesting configuration, so `go test` alone exercises the same
// path the -oneshot flag does.
func TestOneshotSelfCheck(t *testing.T) {
	db := borg.NewDatabase()
	db.AddRelation("Sales", borg.Cat("item"), borg.Cat("store"), borg.Num("units"))
	db.AddRelation("Items", borg.Cat("item"), borg.Cat("store"), borg.Num("price"))
	db.AddRelation("Stores", borg.Cat("store"), borg.Num("area"))
	q, err := db.Query()
	if err != nil {
		t.Fatal(err)
	}
	feats := append(append([]string(nil), contFeatures...), catFeatures...)
	srv, err := q.ServeSharded(feats, borg.ShardOptions{
		ServerOptions: borg.ServerOptions{Payload: borg.PayloadCofactor, Workers: 1},
		Shards:        2,
		PartitionBy:   "store",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	svc := &service{srv: srv, queueLen: srv.QueueLen, highWater: 1024}
	if err := selfCheck(srv, svc, newHandler(svc)); err != nil {
		t.Fatal(err)
	}
}

// TestNewLogger pins the flag parsing: every documented level and
// format builds, anything else is rejected.
func TestNewLogger(t *testing.T) {
	for _, level := range []string{"debug", "info", "warn", "error"} {
		for _, format := range []string{"text", "json"} {
			if _, err := newLogger(level, format); err != nil {
				t.Errorf("newLogger(%q, %q): %v", level, format, err)
			}
		}
	}
	if _, err := newLogger("loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := newLogger("info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}
