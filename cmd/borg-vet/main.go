// Command borg-vet proves the repo's load-bearing contracts at compile
// time: it runs the internal/analysis suite — mapiter (bitwise
// determinism), obsguard (MetricsOff stays a control arm), planroute
// (every join tree through internal/plan), atomicmix (no mixed
// atomic/plain field access) — over the requested packages, plus the
// noalloc build-mode gate (//borg:noalloc functions stay free of heap
// escapes, via `go build -gcflags=-m`).
//
// Usage:
//
//	borg-vet [flags] [packages]
//
// Packages default to ./... resolved in the current module. Exit status
// is 0 when clean, 1 when any invariant is violated, 2 on usage or load
// errors. Suppress a false positive in source with
// //borg:vet-ok <analyzer> (mapiter also accepts
// //borg:nondeterministic-ok); see the README's "Static analysis"
// section for the annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"borg/internal/analysis"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		skip    = flag.String("skip", "", "comma-separated analyzer names to skip")
		list    = flag.Bool("list", false, "list analyzers and exit")
		verbose = flag.Bool("v", false, "report progress while loading and running")
	)
	flag.Parse()

	static := analysis.Analyzers()
	if *list {
		for _, a := range static {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-10s %s\n", "noalloc", "build-mode gate: //borg:noalloc functions must stay free of heap escapes")
		return
	}
	selected, runNoalloc, err := selectAnalyzers(static, *only, *skip)
	if err != nil {
		fatalf(2, "borg-vet: %v", err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf(2, "borg-vet: %v", err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatalf(2, "borg-vet: %v", err)
	}
	patterns := flag.Args()
	progress(*verbose, "loading %s", patternsLabel(patterns))
	if err := loader.List(patterns...); err != nil {
		fatalf(2, "borg-vet: %v", err)
	}
	pkgs, err := loader.Packages()
	if err != nil {
		fatalf(2, "borg-vet: %v", err)
	}
	progress(*verbose, "type-checked %d packages", len(pkgs))

	diags, err := analysis.Run(pkgs, selected)
	if err != nil {
		fatalf(2, "borg-vet: %v", err)
	}
	for _, pkg := range pkgs {
		for _, pos := range pkg.Malformed {
			diags = append(diags, analysis.Diagnostic{
				Pos: pos, Analyzer: "annotation",
				Message: "malformed //borg:vet-ok comment: name the analyzer it suppresses",
			})
		}
	}
	if runNoalloc {
		progress(*verbose, "running noalloc build-mode gate")
		nd, err := analysis.RunNoalloc(loader, pkgs)
		if err != nil {
			fatalf(2, "borg-vet: %v", err)
		}
		diags = append(diags, nd...)
	}
	analysis.SortDiagnostics(diags)

	for _, d := range diags {
		d.Pos.Filename = relToCwd(cwd, d.Pos.Filename)
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "borg-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	progress(*verbose, "clean")
}

// selectAnalyzers applies -only/-skip to the static suite and decides
// whether the noalloc build-mode gate runs.
func selectAnalyzers(static []*analysis.Analyzer, only, skip string) ([]*analysis.Analyzer, bool, error) {
	known := map[string]bool{"noalloc": true}
	for _, a := range static {
		known[a.Name] = true
	}
	parse := func(s string) (map[string]bool, error) {
		if s == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				return nil, fmt.Errorf("unknown analyzer %q (run with -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, false, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, false, err
	}
	keep := func(name string) bool {
		if onlySet != nil && !onlySet[name] {
			return false
		}
		return !skipSet[name]
	}
	var out []*analysis.Analyzer
	for _, a := range static {
		if keep(a.Name) {
			out = append(out, a)
		}
	}
	return out, keep("noalloc"), nil
}

func patternsLabel(patterns []string) string {
	if len(patterns) == 0 {
		return "./..."
	}
	return strings.Join(patterns, " ")
}

func relToCwd(cwd, name string) string {
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

func progress(on bool, format string, args ...any) {
	if on {
		fmt.Fprintf(os.Stderr, "borg-vet: "+format+"\n", args...)
	}
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
