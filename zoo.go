package borg

import (
	"errors"
	"fmt"
	"math"
	"time"

	"borg/internal/ml"
	"borg/internal/relation"
)

// This file is the snapshot model zoo: every model the serving tier can
// train from ONE published epoch's ring statistics, with zero
// interruption of the write path. The paper's central claim — a single
// factorized aggregate batch is the sufficient statistic for a whole
// family of models — becomes, in serving terms: one epoch, many models.
//
//	TrainLinReg / TrainLinRegGD   ridge linear regression  (covariance triple,
//	                              one-hot design on PayloadCofactor)
//	TrainPCA                      principal components     (covariance triple)
//	KMeansSeeds                   Rk-means-style seeding   (covariance triple)
//	TrainPolyReg                  degree-2 polynomial reg. (lifted degree-2 ring;
//	                              varying coefficients on PayloadCofactor)
//	TrainChowLiu                  Chow–Liu dependency tree (cofactor ring)
//	TrainCTree                    categorical regression tree (cofactor ring)
//	TrainSVM                      least-squares linear SVM (cofactor ring)
//
// Every trainer passes the same degenerate-snapshot gate first: a
// snapshot of an empty join (never populated, or churned to empty by
// deletes) yields ErrEmptySnapshot — a typed error, never NaN
// coefficients.

// ErrEmptySnapshot is returned by every snapshot read and trainer when
// the join has no live tuples at the snapshot's epoch: there is nothing
// to train on, and the alternative — dividing by a zero count — would
// silently produce NaN models. Test with errors.Is; cmd/borg-serve maps
// it to HTTP 409.
var ErrEmptySnapshot = ml.ErrEmptySnapshot

// ErrPayloadNotMaintained is returned by trainers whose statistics the
// server was not started with: polynomial regression needs
// ServerOptions{Payload: PayloadPoly2} (or PayloadCofactor for the
// varying-coefficients form), and the categorical zoo (TrainChowLiu,
// TrainCTree, TrainSVM) needs ServerOptions{Payload: PayloadCofactor}.
var ErrPayloadNotMaintained = errors.New("borg: the server does not maintain the ring statistics this model kind needs; start it with the matching ServerOptions.Payload")

// ErrLiftedNotMaintained is the pre-Payload name of
// ErrPayloadNotMaintained; errors.Is works against either.
//
// Deprecated: use ErrPayloadNotMaintained.
var ErrLiftedNotMaintained = ErrPayloadNotMaintained

// ErrMissingFeature is wrapped by Predict/Project when the caller's
// value map omits one of the model's features — a client-input error,
// distinguishable (errors.Is) from server-state errors like
// ErrEmptySnapshot.
var ErrMissingFeature = errors.New("borg: missing feature value")

// ready is the shared snapshot validation of the model zoo: minimum
// support of one joined tuple and finite moments. Every trainer and
// statistics read funnels through it, so the degenerate-snapshot bug
// class is handled once, centrally, for all model kinds.
func (s *ServerSnapshot) ready() error {
	return ml.CheckSnapshot(s.snap.Stats, 1)
}

// sigma assembles this epoch's moment matrix for the given response:
// the one-hot design over continuous and categorical features on a
// cofactor snapshot, the plain continuous design otherwise.
func (s *ServerSnapshot) sigma(response string) (*ml.Sigma, error) {
	if s.snap.Cofactor != nil {
		return ml.SigmaFromCofactor(s.features, s.catFeatures, response, s.snap.Cofactor)
	}
	return ml.SigmaFromCovar(s.features, response, s.snap.Stats)
}

// GDOptions tunes the gradient-descent trainers. The zero value selects
// the defaults (50000 iterations, tolerance 1e-10).
type GDOptions struct {
	// MaxIters caps the gradient steps; training that exhausts the cap
	// reports Converged() == false instead of silently truncating.
	MaxIters int
	// Tol is the gradient-norm stopping tolerance.
	Tol float64
}

func (o GDOptions) maxIters() int {
	if o.MaxIters <= 0 {
		return 50000
	}
	return o.MaxIters
}

func (o GDOptions) tol() float64 {
	if o.Tol <= 0 {
		return 1e-10
	}
	return o.Tol
}

// Converged reports whether gradient descent stopped at its tolerance
// (true for closed-form training). False means the iteration budget ran
// out and the parameters are a truncation — retrain with a larger
// GDOptions.MaxIters or treat the model as approximate.
func (m *LinearRegression) Converged() bool { return m.model.Converged }

// IterationsRun returns how many gradient steps training took (0 for
// the closed form).
func (m *LinearRegression) IterationsRun() int { return m.model.Iterations }

// Predict evaluates the model on named continuous feature values (all
// the model's continuous features must be present). Models with
// categorical features (trained on a PayloadCofactor snapshot) predict
// through PredictCat instead.
func (m *LinearRegression) Predict(values map[string]float64) (float64, error) {
	if len(m.model.Cat) > 0 {
		return 0, fmt.Errorf("borg: Predict supports continuous-only models; this model has categorical features — use PredictCat")
	}
	p := m.model.Theta[0]
	for i, a := range m.model.Cont {
		v, ok := values[a]
		if !ok {
			return 0, fmt.Errorf("%w: Predict needs %s", ErrMissingFeature, a)
		}
		p += m.model.Theta[m.model.ContPos(i)] * v
	}
	return p, nil
}

// PredictCat evaluates a mixed continuous/categorical model: values
// supplies every continuous feature, cats every categorical feature as
// its category string. Category values never observed at training
// contribute an all-zero one-hot block (the design-space convention).
func (m *LinearRegression) PredictCat(values map[string]float64, cats map[string]string) (float64, error) {
	x, codes, err := resolveDesignInputs(m.model.Cont, m.model.Cat, m.dicts, values, cats)
	if err != nil {
		return 0, err
	}
	return m.model.PredictDesign(x, codes), nil
}

// CategoryWeight returns the one-hot parameter of (attr, value) on a
// model trained from a cofactor snapshot.
func (m *LinearRegression) CategoryWeight(attr, value string) (float64, error) {
	for k, g := range m.model.Cat {
		if g != attr {
			continue
		}
		code, ok := lookupCode(m.dicts, attr, value)
		if !ok {
			return 0, fmt.Errorf("borg: value %q never observed for %s", value, attr)
		}
		pos, ok := m.model.CatPos(k, code)
		if !ok {
			return 0, fmt.Errorf("borg: value %q not in the training data", value)
		}
		return m.model.Theta[pos], nil
	}
	return 0, fmt.Errorf("borg: %s is not a categorical feature of the model", attr)
}

// resolveDesignInputs converts the facade's named prediction inputs to
// design-space vectors: continuous values in Cont order and one
// dictionary code per categorical feature (-1 when the category string
// was never interned — an unobserved category, a zero one-hot block).
func resolveDesignInputs(cont, cat []string, dicts map[string]*relation.Dict, values map[string]float64, cats map[string]string) ([]float64, []int32, error) {
	x := make([]float64, len(cont))
	for i, a := range cont {
		v, ok := values[a]
		if !ok {
			return nil, nil, fmt.Errorf("%w: prediction needs %s", ErrMissingFeature, a)
		}
		x[i] = v
	}
	codes := make([]int32, len(cat))
	for k, g := range cat {
		sv, ok := cats[g]
		if !ok {
			return nil, nil, fmt.Errorf("%w: prediction needs categorical %s", ErrMissingFeature, g)
		}
		codes[k] = -1
		if code, ok := lookupCode(dicts, g, sv); ok {
			codes[k] = code
		}
	}
	return x, codes, nil
}

// lookupCode resolves a category string through the server's shared
// dictionaries.
func lookupCode(dicts map[string]*relation.Dict, attr, value string) (int32, bool) {
	d := dicts[attr]
	if d == nil {
		return 0, false
	}
	internMu.RLock()
	code, ok := d.Lookup(value)
	internMu.RUnlock()
	return code, ok
}

// TrainLinRegGD trains a ridge linear regression of the response on the
// remaining maintained features from this epoch's statistics, with
// explicit gradient-descent controls. On a PayloadCofactor snapshot the
// design additionally one-hot encodes the categorical features from the
// cofactor group maps. Non-convergence within GDOptions.MaxIters is
// reported through Converged(), not silently swallowed.
func (s *ServerSnapshot) TrainLinRegGD(response string, lambda float64, opt GDOptions) (_ *LinearRegression, err error) {
	defer s.obsTrain("linreg", time.Now(), &err)
	if _, err := s.featureIndex(response); err != nil {
		return nil, err
	}
	if err := s.ready(); err != nil {
		return nil, err
	}
	sigma, err := s.sigma(response)
	if err != nil {
		return nil, err
	}
	return &LinearRegression{model: ml.TrainLinRegGD(sigma, lambda, opt.maxIters(), opt.tol()), sigma: sigma, dicts: s.dicts}, nil
}

// PCAResult is a principal-component analysis trained from one epoch's
// covariance statistics: the top-k eigenpairs of the centered covariance
// of the maintained features.
type PCAResult struct {
	// Features names the component dimensions, in order.
	Features []string
	// Components holds k unit-length principal axes (rows), leading
	// eigenvalue first.
	Components [][]float64
	// Eigenvalues are the corresponding variances along each axis.
	Eigenvalues []float64
	// Means holds the per-feature means the components are centered
	// against.
	Means []float64
	// Count is the joined-tuple count the statistics cover; Epoch the
	// snapshot's publication sequence number.
	Count float64
	Epoch uint64
}

// TrainPCA extracts the top-k principal components at this epoch — the
// covariance triple alone is the sufficient statistic, so training costs
// O(k·n²) independent of the data size. k ≤ 0 or k > features selects
// all components.
func (s *ServerSnapshot) TrainPCA(k int) (_ *PCAResult, err error) {
	defer s.obsTrain("pca", time.Now(), &err)
	if err := s.ready(); err != nil {
		return nil, err
	}
	sigma, err := ml.MomentsFromCovar(s.features, s.snap.Stats)
	if err != nil {
		return nil, err
	}
	comps, eigs, err := ml.PCA(sigma, k, 0, pcaSeed)
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(s.features))
	for i := range means {
		means[i] = sigma.XtX[0][i+1]
	}
	return &PCAResult{
		Features:    s.features,
		Components:  comps,
		Eigenvalues: eigs,
		Means:       means,
		Count:       s.snap.Stats.Count,
		Epoch:       s.snap.Epoch,
	}, nil
}

// pcaSeed fixes the power-iteration start so PCA is a pure function of
// the snapshot statistics: equal epochs give equal components.
const pcaSeed = 2020

// Project maps named feature values onto the principal axes: the
// mean-centered dot product with each component.
func (p *PCAResult) Project(values map[string]float64) ([]float64, error) {
	x := make([]float64, len(p.Features))
	for i, f := range p.Features {
		v, ok := values[f]
		if !ok {
			return nil, fmt.Errorf("%w: Project needs %s", ErrMissingFeature, f)
		}
		x[i] = v - p.Means[i]
	}
	out := make([]float64, len(p.Components))
	for c, comp := range p.Components {
		dot := 0.0
		for i := range x {
			dot += comp[i] * x[i]
		}
		out[c] = dot
	}
	return out, nil
}

// PolyRegression is a degree-2 polynomial regression trained from one
// epoch's statistics: on a PayloadPoly2 snapshot, linear in the
// expanded space {1, x_i, x_i·x_j}; on a PayloadCofactor snapshot, the
// varying-coefficients categorical analogue {1, x_i, 1[g=c], x_i·1[g=c]}.
type PolyRegression struct {
	model *ml.PolyReg // poly2 path; nil on the cofactor path
	cat   *ml.CatPoly // cofactor path; nil on the poly2 path
	dicts map[string]*relation.Dict
	// Count and Epoch identify the statistics the model was trained on.
	Count float64
	Epoch uint64
}

// TrainPolyReg trains a degree-2 polynomial ridge regression of the
// response on the remaining maintained features, purely from this
// epoch's ring statistics. The server must maintain the lifted degree-2
// ring (ServerOptions{Payload: PayloadPoly2}) or the cofactor ring
// (PayloadCofactor, which trains the varying-coefficients categorical
// form); otherwise ErrPayloadNotMaintained.
func (s *ServerSnapshot) TrainPolyReg(response string, lambda float64) (_ *PolyRegression, err error) {
	defer s.obsTrain("polyreg", time.Now(), &err)
	if _, err := s.featureIndex(response); err != nil {
		return nil, err
	}
	if err := s.ready(); err != nil {
		return nil, err
	}
	switch {
	case s.snap.Cofactor != nil:
		m, err := ml.TrainCatPolyFromCofactor(s.features, s.catFeatures, response, s.snap.Cofactor, lambda)
		if err != nil {
			return nil, err
		}
		return &PolyRegression{cat: m, dicts: s.dicts, Count: s.snap.Stats.Count, Epoch: s.snap.Epoch}, nil
	case s.snap.Lifted != nil:
		m, err := ml.TrainPolyRegFromLifted(s.features, response, s.snap.Lifted, lambda)
		if err != nil {
			return nil, err
		}
		return &PolyRegression{model: m, Count: s.snap.Stats.Count, Epoch: s.snap.Epoch}, nil
	}
	return nil, ErrPayloadNotMaintained
}

// Intercept returns the intercept parameter.
func (m *PolyRegression) Intercept() float64 {
	if m.cat != nil {
		return m.cat.Theta[0]
	}
	return m.model.Theta[0]
}

// Features returns the model's base continuous features, in order.
func (m *PolyRegression) Features() []string {
	if m.cat != nil {
		return m.cat.Cont
	}
	return m.model.Cont
}

// CatFeatures returns the model's categorical features (empty on the
// poly2 path).
func (m *PolyRegression) CatFeatures() []string {
	if m.cat != nil {
		return m.cat.Cat
	}
	return nil
}

// Response returns the response attribute.
func (m *PolyRegression) Response() string {
	if m.cat != nil {
		return m.cat.Response
	}
	return m.model.Response
}

// Coefficient returns the base linear parameter of a continuous feature.
func (m *PolyRegression) Coefficient(attr string) (float64, error) {
	cont := m.Features()
	for i, a := range cont {
		if a == attr {
			if m.cat != nil {
				return m.cat.Theta[1+i], nil
			}
			return m.model.Theta[1+i], nil
		}
	}
	return 0, fmt.Errorf("borg: %s is not a feature of the model", attr)
}

// PairCoefficient returns the parameter of the x_a·x_b interaction term
// (a == b selects the square term). The varying-coefficients cofactor
// form has categorical interactions instead — it reports an error here.
func (m *PolyRegression) PairCoefficient(a, b string) (float64, error) {
	if m.cat != nil {
		return 0, fmt.Errorf("borg: the varying-coefficients model has no continuous-pair terms; its interactions are continuous×category")
	}
	ia, ib := -1, -1
	for i, f := range m.model.Cont {
		if f == a {
			ia = i
		}
		if f == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("borg: %s or %s is not a feature of the model", a, b)
	}
	return m.model.PairTheta(ia, ib), nil
}

// Predict evaluates the model on named continuous feature values. The
// varying-coefficients cofactor form needs the categorical values too —
// use PredictCat.
func (m *PolyRegression) Predict(values map[string]float64) (float64, error) {
	if m.cat != nil {
		return 0, fmt.Errorf("borg: this model has categorical features — use PredictCat")
	}
	x := make([]float64, len(m.model.Cont))
	for i, a := range m.model.Cont {
		v, ok := values[a]
		if !ok {
			return 0, fmt.Errorf("%w: Predict needs %s", ErrMissingFeature, a)
		}
		x[i] = v
	}
	return m.model.PredictVec(x), nil
}

// PredictCat evaluates the model with explicit categorical values. On
// the poly2 path the categorical map is ignored.
func (m *PolyRegression) PredictCat(values map[string]float64, cats map[string]string) (float64, error) {
	if m.cat == nil {
		return m.Predict(values)
	}
	x, codes, err := resolveDesignInputs(m.cat.Cont, m.cat.Cat, m.dicts, values, cats)
	if err != nil {
		return 0, err
	}
	return m.cat.PredictVec(x, codes), nil
}

// DependencyEdge is declared in models.go and shared with the batch
// Query.ChowLiu path.

// TrainChowLiu estimates the pairwise mutual information of the
// maintained categorical features from this epoch's cofactor group
// counts and returns the maximum-spanning dependency tree — the live
// form of Query.ChowLiu, no data access. Requires PayloadCofactor.
func (s *ServerSnapshot) TrainChowLiu() (_ []DependencyEdge, err error) {
	defer s.obsTrain("chowliu", time.Now(), &err)
	if s.snap.Cofactor == nil {
		return nil, ErrPayloadNotMaintained
	}
	mi, err := ml.MutualInfoFromCofactor(s.catFeatures, s.snap.Cofactor)
	if err != nil {
		return nil, err
	}
	var out []DependencyEdge
	for _, e := range ml.ChowLiu(mi) {
		out = append(out, DependencyEdge{A: s.catFeatures[e.A], B: s.catFeatures[e.B], MI: e.MI})
	}
	return out, nil
}

// TrainCTree trains a CART-style regression tree of the response whose
// splits are category-equality predicates, scored entirely from this
// epoch's cofactor group aggregates (TreeOptions.ThresholdsPer is
// unused: thresholded continuous splits need per-threshold statistics
// the cofactor ring does not carry). Requires PayloadCofactor.
func (s *ServerSnapshot) TrainCTree(response string, opt TreeOptions) (_ *DecisionTree, err error) {
	defer s.obsTrain("ctree", time.Now(), &err)
	if _, err := s.featureIndex(response); err != nil {
		return nil, err
	}
	if s.snap.Cofactor == nil {
		return nil, ErrPayloadNotMaintained
	}
	tree, err := ml.TrainCTreeFromCofactor(s.features, s.catFeatures, response, s.snap.Cofactor, ml.CatTreeConfig{
		MaxDepth: opt.MaxDepth,
		MinRows:  opt.MinRows,
	})
	if err != nil {
		return nil, err
	}
	return &DecisionTree{tree: tree}, nil
}

// SVMClassifier is a least-squares linear SVM trained from one epoch's
// cofactor statistics: a ridge regression of a ±1 label on the one-hot
// design, thresholded at zero for classification.
type SVMClassifier struct {
	model *ml.LSSVM
	dicts map[string]*relation.Dict
	Count float64
	Epoch uint64
}

// TrainSVM trains the classifier at this epoch. The label must be a
// maintained continuous feature carrying ±1; the remaining continuous
// features plus the one-hot categorical expansion form the design.
// Requires PayloadCofactor.
func (s *ServerSnapshot) TrainSVM(label string, lambda float64) (_ *SVMClassifier, err error) {
	defer s.obsTrain("svm", time.Now(), &err)
	if _, err := s.featureIndex(label); err != nil {
		return nil, err
	}
	if s.snap.Cofactor == nil {
		return nil, ErrPayloadNotMaintained
	}
	if err := s.ready(); err != nil {
		return nil, err
	}
	sigma, err := ml.SigmaFromCofactor(s.features, s.catFeatures, label, s.snap.Cofactor)
	if err != nil {
		return nil, err
	}
	m, err := ml.TrainLSSVM(sigma, lambda)
	if err != nil {
		return nil, err
	}
	return &SVMClassifier{model: m, dicts: s.dicts, Count: s.snap.Stats.Count, Epoch: s.snap.Epoch}, nil
}

// Features returns the classifier's continuous features, in order.
func (m *SVMClassifier) Features() []string { return m.model.Cont }

// CatFeatures returns the classifier's categorical features, in order.
func (m *SVMClassifier) CatFeatures() []string { return m.model.Cat }

// Bias returns the intercept of the decision function.
func (m *SVMClassifier) Bias() float64 { return m.model.Theta[0] }

// Coefficient returns the weight of a continuous feature.
func (m *SVMClassifier) Coefficient(attr string) (float64, error) {
	for i, a := range m.model.Cont {
		if a == attr {
			return m.model.Theta[m.model.ContPos(i)], nil
		}
	}
	return 0, fmt.Errorf("borg: %s is not a continuous feature of the model", attr)
}

// DecisionValue evaluates w·φ(x)+b on named feature values (continuous
// in values, categorical strings in cats).
func (m *SVMClassifier) DecisionValue(values map[string]float64, cats map[string]string) (float64, error) {
	x, codes, err := resolveDesignInputs(m.model.Cont, m.model.Cat, m.dicts, values, cats)
	if err != nil {
		return 0, err
	}
	return m.model.DecisionValue(x, codes), nil
}

// Classify returns the predicted ±1 label.
func (m *SVMClassifier) Classify(values map[string]float64, cats map[string]string) (float64, error) {
	v, err := m.DecisionValue(values, cats)
	if err != nil {
		return 0, err
	}
	if v >= 0 {
		return 1, nil
	}
	return -1, nil
}

// KMeansSeeding is a set of cluster seeds derived from one epoch's
// covariance statistics: the mean plus principal-axis offsets, the
// Rk-means-style initialization for a downstream Lloyd's run.
type KMeansSeeding struct {
	// Features names the seed dimensions, in order.
	Features []string
	// Centers holds k seed points; Centers[0] is the mean.
	Centers [][]float64
	// TotalVariance is the trace of the centered covariance — the k-means
	// objective of the single-cluster solution, an upper bound any
	// clustering must beat.
	TotalVariance float64
	Count         float64
	Epoch         uint64
}

// KMeansSeeds derives k cluster seeds at this epoch, from the ring
// statistics alone — no data access. Seeds initialize a downstream
// Lloyd's run (e.g. Query.KMeans over a coreset, or an external
// clusterer over fresh data).
func (s *ServerSnapshot) KMeansSeeds(k int) (_ *KMeansSeeding, err error) {
	defer s.obsTrain("kmeans", time.Now(), &err)
	if err := s.ready(); err != nil {
		return nil, err
	}
	sigma, err := ml.MomentsFromCovar(s.features, s.snap.Stats)
	if err != nil {
		return nil, err
	}
	centers, err := ml.KMeansSeeds(sigma, k)
	if err != nil {
		return nil, err
	}
	variance := 0.0
	for i := range s.features {
		mean := sigma.XtX[0][i+1]
		variance += sigma.XtX[i+1][i+1] - mean*mean
	}
	variance *= s.snap.Stats.Count
	if math.IsNaN(variance) {
		variance = 0
	}
	return &KMeansSeeding{
		Features:      s.features,
		Centers:       centers,
		TotalVariance: variance,
		Count:         s.snap.Stats.Count,
		Epoch:         s.snap.Epoch,
	}, nil
}

// Lifted reports whether this snapshot carries the lifted degree-2
// statistics polynomial regression trains on (Payload() == PayloadPoly2).
func (s *ServerSnapshot) Lifted() bool { return s.snap.Lifted != nil }

// TrainLinRegGD trains at the current snapshot with explicit gradient-
// descent controls (see ServerSnapshot.TrainLinRegGD).
func (s *Server) TrainLinRegGD(response string, lambda float64, opt GDOptions) (*LinearRegression, error) {
	return s.CovarSnapshot().TrainLinRegGD(response, lambda, opt)
}

// TrainPCA extracts principal components at the current snapshot.
func (s *Server) TrainPCA(k int) (*PCAResult, error) { return s.CovarSnapshot().TrainPCA(k) }

// TrainPolyReg trains a degree-2 polynomial regression at the current
// snapshot (requires PayloadPoly2 or PayloadCofactor).
func (s *Server) TrainPolyReg(response string, lambda float64) (*PolyRegression, error) {
	return s.CovarSnapshot().TrainPolyReg(response, lambda)
}

// KMeansSeeds derives cluster seeds at the current snapshot.
func (s *Server) KMeansSeeds(k int) (*KMeansSeeding, error) { return s.CovarSnapshot().KMeansSeeds(k) }

// TrainChowLiu returns the Chow–Liu dependency tree of the categorical
// features at the current snapshot (requires PayloadCofactor).
func (s *Server) TrainChowLiu() ([]DependencyEdge, error) { return s.CovarSnapshot().TrainChowLiu() }

// TrainCTree trains a categorical regression tree at the current
// snapshot (requires PayloadCofactor).
func (s *Server) TrainCTree(response string, opt TreeOptions) (*DecisionTree, error) {
	return s.CovarSnapshot().TrainCTree(response, opt)
}

// TrainSVM trains a least-squares SVM at the current snapshot (requires
// PayloadCofactor).
func (s *Server) TrainSVM(label string, lambda float64) (*SVMClassifier, error) {
	return s.CovarSnapshot().TrainSVM(label, lambda)
}

// TrainLinRegGD trains on the current ring-merged statistics with
// explicit gradient-descent controls.
func (s *ShardedServer) TrainLinRegGD(response string, lambda float64, opt GDOptions) (*LinearRegression, error) {
	return s.CovarSnapshot().TrainLinRegGD(response, lambda, opt)
}

// TrainPCA extracts principal components from the current ring-merged
// statistics — identical to an unsharded server's components.
func (s *ShardedServer) TrainPCA(k int) (*PCAResult, error) { return s.CovarSnapshot().TrainPCA(k) }

// TrainPolyReg trains a degree-2 polynomial regression from the current
// ring-merged statistics (requires PayloadPoly2 or PayloadCofactor).
func (s *ShardedServer) TrainPolyReg(response string, lambda float64) (*PolyRegression, error) {
	return s.CovarSnapshot().TrainPolyReg(response, lambda)
}

// KMeansSeeds derives cluster seeds from the current ring-merged
// statistics.
func (s *ShardedServer) KMeansSeeds(k int) (*KMeansSeeding, error) {
	return s.CovarSnapshot().KMeansSeeds(k)
}

// TrainChowLiu returns the Chow–Liu dependency tree from the current
// ring-merged cofactor statistics (requires PayloadCofactor).
func (s *ShardedServer) TrainChowLiu() ([]DependencyEdge, error) {
	return s.CovarSnapshot().TrainChowLiu()
}

// TrainCTree trains a categorical regression tree from the current
// ring-merged cofactor statistics (requires PayloadCofactor).
func (s *ShardedServer) TrainCTree(response string, opt TreeOptions) (*DecisionTree, error) {
	return s.CovarSnapshot().TrainCTree(response, opt)
}

// TrainSVM trains a least-squares SVM from the current ring-merged
// cofactor statistics (requires PayloadCofactor).
func (s *ShardedServer) TrainSVM(label string, lambda float64) (*SVMClassifier, error) {
	return s.CovarSnapshot().TrainSVM(label, lambda)
}
