package borg

import (
	"errors"
	"fmt"
	"math"

	"borg/internal/ml"
)

// This file is the snapshot model zoo: every model the serving tier can
// train from ONE published epoch's ring statistics, with zero
// interruption of the write path. The paper's central claim — a single
// factorized aggregate batch is the sufficient statistic for a whole
// family of models — becomes, in serving terms: one epoch, many models.
//
//	TrainLinReg / TrainLinRegGD   ridge linear regression  (covariance triple)
//	TrainPCA                      principal components     (covariance triple)
//	KMeansSeeds                   Rk-means-style seeding   (covariance triple)
//	TrainPolyReg                  degree-2 polynomial reg. (lifted degree-2 ring)
//
// Every trainer passes the same degenerate-snapshot gate first: a
// snapshot of an empty join (never populated, or churned to empty by
// deletes) yields ErrEmptySnapshot — a typed error, never NaN
// coefficients.

// ErrEmptySnapshot is returned by every snapshot read and trainer when
// the join has no live tuples at the snapshot's epoch: there is nothing
// to train on, and the alternative — dividing by a zero count — would
// silently produce NaN models. Test with errors.Is; cmd/borg-serve maps
// it to HTTP 409.
var ErrEmptySnapshot = ml.ErrEmptySnapshot

// ErrLiftedNotMaintained is returned by trainers that need the lifted
// degree-2 statistics (polynomial regression) from a server that was
// started without ServerOptions.Lifted.
var ErrLiftedNotMaintained = errors.New("borg: the server does not maintain the lifted degree-2 statistics; start it with ServerOptions{Lifted: true}")

// ErrMissingFeature is wrapped by Predict/Project when the caller's
// value map omits one of the model's features — a client-input error,
// distinguishable (errors.Is) from server-state errors like
// ErrEmptySnapshot.
var ErrMissingFeature = errors.New("borg: missing feature value")

// ready is the shared snapshot validation of the model zoo: minimum
// support of one joined tuple and finite moments. Every trainer and
// statistics read funnels through it, so the degenerate-snapshot bug
// class is handled once, centrally, for all model kinds.
func (s *ServerSnapshot) ready() error {
	return ml.CheckSnapshot(s.snap.Stats, 1)
}

// GDOptions tunes the gradient-descent trainers. The zero value selects
// the defaults (50000 iterations, tolerance 1e-10).
type GDOptions struct {
	// MaxIters caps the gradient steps; training that exhausts the cap
	// reports Converged() == false instead of silently truncating.
	MaxIters int
	// Tol is the gradient-norm stopping tolerance.
	Tol float64
}

func (o GDOptions) maxIters() int {
	if o.MaxIters <= 0 {
		return 50000
	}
	return o.MaxIters
}

func (o GDOptions) tol() float64 {
	if o.Tol <= 0 {
		return 1e-10
	}
	return o.Tol
}

// Converged reports whether gradient descent stopped at its tolerance
// (true for closed-form training). False means the iteration budget ran
// out and the parameters are a truncation — retrain with a larger
// GDOptions.MaxIters or treat the model as approximate.
func (m *LinearRegression) Converged() bool { return m.model.Converged }

// IterationsRun returns how many gradient steps training took (0 for
// the closed form).
func (m *LinearRegression) IterationsRun() int { return m.model.Iterations }

// Predict evaluates the model on named continuous feature values (all
// the model's continuous features must be present). Models with
// categorical features need the full design path; the serving-tier
// models are continuous-only.
func (m *LinearRegression) Predict(values map[string]float64) (float64, error) {
	if len(m.model.Cat) > 0 {
		return 0, fmt.Errorf("borg: Predict supports continuous-only models; this model has categorical features")
	}
	p := m.model.Theta[0]
	for i, a := range m.model.Cont {
		v, ok := values[a]
		if !ok {
			return 0, fmt.Errorf("%w: Predict needs %s", ErrMissingFeature, a)
		}
		p += m.model.Theta[m.model.ContPos(i)] * v
	}
	return p, nil
}

// TrainLinRegGD trains a ridge linear regression of the response on the
// remaining maintained features from this epoch's statistics, with
// explicit gradient-descent controls. Non-convergence within
// GDOptions.MaxIters is reported through Converged(), not silently
// swallowed.
func (s *ServerSnapshot) TrainLinRegGD(response string, lambda float64, opt GDOptions) (*LinearRegression, error) {
	if _, err := s.featureIndex(response); err != nil {
		return nil, err
	}
	if err := s.ready(); err != nil {
		return nil, err
	}
	sigma, err := ml.SigmaFromCovar(s.features, response, s.snap.Stats)
	if err != nil {
		return nil, err
	}
	return &LinearRegression{model: ml.TrainLinRegGD(sigma, lambda, opt.maxIters(), opt.tol()), sigma: sigma}, nil
}

// PCAResult is a principal-component analysis trained from one epoch's
// covariance statistics: the top-k eigenpairs of the centered covariance
// of the maintained features.
type PCAResult struct {
	// Features names the component dimensions, in order.
	Features []string
	// Components holds k unit-length principal axes (rows), leading
	// eigenvalue first.
	Components [][]float64
	// Eigenvalues are the corresponding variances along each axis.
	Eigenvalues []float64
	// Means holds the per-feature means the components are centered
	// against.
	Means []float64
	// Count is the joined-tuple count the statistics cover; Epoch the
	// snapshot's publication sequence number.
	Count float64
	Epoch uint64
}

// TrainPCA extracts the top-k principal components at this epoch — the
// covariance triple alone is the sufficient statistic, so training costs
// O(k·n²) independent of the data size. k ≤ 0 or k > features selects
// all components.
func (s *ServerSnapshot) TrainPCA(k int) (*PCAResult, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	sigma, err := ml.MomentsFromCovar(s.features, s.snap.Stats)
	if err != nil {
		return nil, err
	}
	comps, eigs, err := ml.PCA(sigma, k, 0, pcaSeed)
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(s.features))
	for i := range means {
		means[i] = sigma.XtX[0][i+1]
	}
	return &PCAResult{
		Features:    s.features,
		Components:  comps,
		Eigenvalues: eigs,
		Means:       means,
		Count:       s.snap.Stats.Count,
		Epoch:       s.snap.Epoch,
	}, nil
}

// pcaSeed fixes the power-iteration start so PCA is a pure function of
// the snapshot statistics: equal epochs give equal components.
const pcaSeed = 2020

// Project maps named feature values onto the principal axes: the
// mean-centered dot product with each component.
func (p *PCAResult) Project(values map[string]float64) ([]float64, error) {
	x := make([]float64, len(p.Features))
	for i, f := range p.Features {
		v, ok := values[f]
		if !ok {
			return nil, fmt.Errorf("%w: Project needs %s", ErrMissingFeature, f)
		}
		x[i] = v - p.Means[i]
	}
	out := make([]float64, len(p.Components))
	for c, comp := range p.Components {
		dot := 0.0
		for i := range x {
			dot += comp[i] * x[i]
		}
		out[c] = dot
	}
	return out, nil
}

// PolyRegression is a degree-2 polynomial regression trained from one
// epoch's lifted statistics: linear in the expanded feature space
// {1, x_i, x_i·x_j}.
type PolyRegression struct {
	model *ml.PolyReg
	// Count and Epoch identify the statistics the model was trained on.
	Count float64
	Epoch uint64
}

// TrainPolyReg trains a degree-2 polynomial ridge regression of the
// response on the remaining maintained features, purely from this
// epoch's lifted degree-2 statistics. The server must maintain them
// (ServerOptions{Lifted: true}); otherwise ErrLiftedNotMaintained.
func (s *ServerSnapshot) TrainPolyReg(response string, lambda float64) (*PolyRegression, error) {
	if _, err := s.featureIndex(response); err != nil {
		return nil, err
	}
	if err := s.ready(); err != nil {
		return nil, err
	}
	if s.snap.Lifted == nil {
		return nil, ErrLiftedNotMaintained
	}
	m, err := ml.TrainPolyRegFromLifted(s.features, response, s.snap.Lifted, lambda)
	if err != nil {
		return nil, err
	}
	return &PolyRegression{model: m, Count: s.snap.Stats.Count, Epoch: s.snap.Epoch}, nil
}

// Intercept returns the intercept parameter.
func (m *PolyRegression) Intercept() float64 { return m.model.Theta[0] }

// Features returns the model's base features, in order.
func (m *PolyRegression) Features() []string { return m.model.Cont }

// Response returns the response attribute.
func (m *PolyRegression) Response() string { return m.model.Response }

// Coefficient returns the linear parameter of a base feature.
func (m *PolyRegression) Coefficient(attr string) (float64, error) {
	for i, a := range m.model.Cont {
		if a == attr {
			return m.model.Theta[1+i], nil
		}
	}
	return 0, fmt.Errorf("borg: %s is not a feature of the model", attr)
}

// PairCoefficient returns the parameter of the x_a·x_b interaction term
// (a == b selects the square term).
func (m *PolyRegression) PairCoefficient(a, b string) (float64, error) {
	ia, ib := -1, -1
	for i, f := range m.model.Cont {
		if f == a {
			ia = i
		}
		if f == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("borg: %s or %s is not a feature of the model", a, b)
	}
	return m.model.PairTheta(ia, ib), nil
}

// Predict evaluates the model on named feature values.
func (m *PolyRegression) Predict(values map[string]float64) (float64, error) {
	x := make([]float64, len(m.model.Cont))
	for i, a := range m.model.Cont {
		v, ok := values[a]
		if !ok {
			return 0, fmt.Errorf("%w: Predict needs %s", ErrMissingFeature, a)
		}
		x[i] = v
	}
	return m.model.PredictVec(x), nil
}

// KMeansSeeding is a set of cluster seeds derived from one epoch's
// covariance statistics: the mean plus principal-axis offsets, the
// Rk-means-style initialization for a downstream Lloyd's run.
type KMeansSeeding struct {
	// Features names the seed dimensions, in order.
	Features []string
	// Centers holds k seed points; Centers[0] is the mean.
	Centers [][]float64
	// TotalVariance is the trace of the centered covariance — the k-means
	// objective of the single-cluster solution, an upper bound any
	// clustering must beat.
	TotalVariance float64
	Count         float64
	Epoch         uint64
}

// KMeansSeeds derives k cluster seeds at this epoch, from the ring
// statistics alone — no data access. Seeds initialize a downstream
// Lloyd's run (e.g. Query.KMeans over a coreset, or an external
// clusterer over fresh data).
func (s *ServerSnapshot) KMeansSeeds(k int) (*KMeansSeeding, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	sigma, err := ml.MomentsFromCovar(s.features, s.snap.Stats)
	if err != nil {
		return nil, err
	}
	centers, err := ml.KMeansSeeds(sigma, k)
	if err != nil {
		return nil, err
	}
	variance := 0.0
	for i := range s.features {
		mean := sigma.XtX[0][i+1]
		variance += sigma.XtX[i+1][i+1] - mean*mean
	}
	variance *= s.snap.Stats.Count
	if math.IsNaN(variance) {
		variance = 0
	}
	return &KMeansSeeding{
		Features:      s.features,
		Centers:       centers,
		TotalVariance: variance,
		Count:         s.snap.Stats.Count,
		Epoch:         s.snap.Epoch,
	}, nil
}

// Lifted reports whether this snapshot carries the lifted degree-2
// statistics polynomial regression trains on.
func (s *ServerSnapshot) Lifted() bool { return s.snap.Lifted != nil }

// TrainLinRegGD trains at the current snapshot with explicit gradient-
// descent controls (see ServerSnapshot.TrainLinRegGD).
func (s *Server) TrainLinRegGD(response string, lambda float64, opt GDOptions) (*LinearRegression, error) {
	return s.CovarSnapshot().TrainLinRegGD(response, lambda, opt)
}

// TrainPCA extracts principal components at the current snapshot.
func (s *Server) TrainPCA(k int) (*PCAResult, error) { return s.CovarSnapshot().TrainPCA(k) }

// TrainPolyReg trains a degree-2 polynomial regression at the current
// snapshot (requires ServerOptions{Lifted: true}).
func (s *Server) TrainPolyReg(response string, lambda float64) (*PolyRegression, error) {
	return s.CovarSnapshot().TrainPolyReg(response, lambda)
}

// KMeansSeeds derives cluster seeds at the current snapshot.
func (s *Server) KMeansSeeds(k int) (*KMeansSeeding, error) { return s.CovarSnapshot().KMeansSeeds(k) }

// TrainLinRegGD trains on the current ring-merged statistics with
// explicit gradient-descent controls.
func (s *ShardedServer) TrainLinRegGD(response string, lambda float64, opt GDOptions) (*LinearRegression, error) {
	return s.CovarSnapshot().TrainLinRegGD(response, lambda, opt)
}

// TrainPCA extracts principal components from the current ring-merged
// statistics — identical to an unsharded server's components.
func (s *ShardedServer) TrainPCA(k int) (*PCAResult, error) { return s.CovarSnapshot().TrainPCA(k) }

// TrainPolyReg trains a degree-2 polynomial regression from the current
// ring-merged lifted statistics (requires ServerOptions{Lifted: true}).
func (s *ShardedServer) TrainPolyReg(response string, lambda float64) (*PolyRegression, error) {
	return s.CovarSnapshot().TrainPolyReg(response, lambda)
}

// KMeansSeeds derives cluster seeds from the current ring-merged
// statistics.
func (s *ShardedServer) KMeansSeeds(k int) (*KMeansSeeding, error) {
	return s.CovarSnapshot().KMeansSeeds(k)
}
