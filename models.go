package borg

import (
	"fmt"
	"strings"

	"borg/internal/core"
	"borg/internal/engine"
	"borg/internal/ivm"
	"borg/internal/ml"
	"borg/internal/relation"
)

// LinearRegression is a ridge linear regression model trained over the
// join from aggregate results only.
type LinearRegression struct {
	model *ml.LinReg
	sigma *ml.Sigma
	dicts map[string]*relation.Dict
}

// LinearRegression trains a ridge model with the given features and
// response: one LMFAO covariance batch over the join, then gradient
// descent on the moments (Section 2.1 of the paper).
func (q *Query) LinearRegression(f Features, response string, lambda float64) (*LinearRegression, error) {
	sigma, err := q.covariance(f, response)
	if err != nil {
		return nil, err
	}
	m := ml.TrainLinRegGD(sigma, lambda, 50000, 1e-10)
	return &LinearRegression{model: m, sigma: sigma, dicts: q.dicts(f.Categorical)}, nil
}

// Intercept returns the intercept parameter.
func (m *LinearRegression) Intercept() float64 { return m.model.Theta[0] }

// Coefficient returns the parameter of a continuous feature.
func (m *LinearRegression) Coefficient(attr string) (float64, error) {
	for i, a := range m.model.Cont {
		if a == attr {
			return m.model.Theta[m.model.ContPos(i)], nil
		}
	}
	return 0, fmt.Errorf("borg: %s is not a continuous feature of the model", attr)
}

// CategoryCoefficient returns the one-hot parameter of (attr, value).
func (m *LinearRegression) CategoryCoefficient(q *Query, attr, value string) (float64, error) {
	for k, g := range m.model.Cat {
		if g != attr {
			continue
		}
		dict := q.dict(attr)
		if dict == nil {
			return 0, fmt.Errorf("borg: no dictionary for %s", attr)
		}
		code, ok := dict.Lookup(value)
		if !ok {
			return 0, fmt.Errorf("borg: value %q never observed for %s", value, attr)
		}
		pos, ok := m.model.CatPos(k, code)
		if !ok {
			return 0, fmt.Errorf("borg: value %q not in the training data", value)
		}
		return m.model.Theta[pos], nil
	}
	return 0, fmt.Errorf("borg: %s is not a categorical feature of the model", attr)
}

// TrainingRMSE materializes the join ONCE for validation and reports the
// root-mean-square error. This is a diagnostics path; training itself
// never materializes.
func (m *LinearRegression) TrainingRMSE(q *Query) (float64, error) {
	data, err := engine.MaterializeJoin(q.join)
	if err != nil {
		return 0, err
	}
	return m.model.RMSE(data)
}

// Retrain fits a new model over a SUBSET of the original features
// without touching the data — the Section 1.5 model-selection move.
func (m *LinearRegression) Retrain(f Features, lambda float64) (*LinearRegression, error) {
	sub, err := ml.SubsetSigma(m.sigma, f.Continuous, f.Categorical)
	if err != nil {
		return nil, err
	}
	return &LinearRegression{model: ml.TrainLinRegGD(sub, lambda, 50000, 1e-10), sigma: sub, dicts: m.dicts}, nil
}

func (q *Query) dict(attr string) *relation.Dict {
	return q.db.db.Dict(attr)
}

// covariance evaluates the covariance batch and assembles the moments.
func (q *Query) covariance(f Features, response string) (*ml.Sigma, error) {
	jt, err := q.tree()
	if err != nil {
		return nil, err
	}
	plan, err := core.Compile(jt, core.CovarianceBatch(f.core(), response), q.opts())
	if err != nil {
		return nil, err
	}
	results, err := plan.Eval()
	if err != nil {
		return nil, err
	}
	return ml.AssembleSigma(f.Continuous, f.Categorical, response, results)
}

// Covariance exposes the raw normalized moments of the features — the
// sufficient statistics every Section 2.1 model consumes.
type Covariance struct {
	sigma *ml.Sigma
}

// Covariance computes the covariance matrix of the features and response.
func (q *Query) Covariance(f Features, response string) (*Covariance, error) {
	s, err := q.covariance(f, response)
	if err != nil {
		return nil, err
	}
	return &Covariance{sigma: s}, nil
}

// Count returns the number of tuples in the join.
func (c *Covariance) Count() float64 { return c.sigma.Count }

// Mean returns the mean of a continuous feature over the join.
func (c *Covariance) Mean(attr string) (float64, error) {
	for i, a := range c.sigma.Cont {
		if a == attr {
			return c.sigma.XtX[0][c.sigma.ContPos(i)], nil
		}
	}
	return 0, fmt.Errorf("borg: %s not in covariance", attr)
}

// SecondMoment returns E[a·b] over the join for continuous features.
func (c *Covariance) SecondMoment(a, b string) (float64, error) {
	pa, pb := -1, -1
	for i, x := range c.sigma.Cont {
		if x == a {
			pa = c.sigma.ContPos(i)
		}
		if x == b {
			pb = c.sigma.ContPos(i)
		}
	}
	if pa < 0 || pb < 0 {
		return 0, fmt.Errorf("borg: %s or %s not in covariance", a, b)
	}
	return c.sigma.XtX[pa][pb], nil
}

// DecisionTree is a CART regression tree trained over the join.
type DecisionTree struct {
	tree *ml.Tree
}

// TreeOptions configures DecisionTree.
type TreeOptions struct {
	MaxDepth      int
	MinRows       float64
	ThresholdsPer int // candidate thresholds per continuous feature
}

// DecisionTree trains a CART regression tree: one LMFAO batch per tree
// node (Section 2.2), never materializing the join.
func (q *Query) DecisionTree(f Features, response string, opt TreeOptions) (*DecisionTree, error) {
	if opt.ThresholdsPer <= 0 {
		opt.ThresholdsPer = 8
	}
	jt, err := q.tree()
	if err != nil {
		return nil, err
	}
	ths := make(map[string][]float64, len(f.Continuous))
	for _, a := range f.Continuous {
		lo, hi, err := q.observedRange(a)
		if err != nil {
			return nil, err
		}
		if hi <= lo {
			hi = lo + 1
		}
		for i := 1; i <= opt.ThresholdsPer; i++ {
			ths[a] = append(ths[a], lo+(hi-lo)*float64(i)/float64(opt.ThresholdsPer+1))
		}
	}
	tree, err := ml.TrainCART(jt, ml.TreeConfig{
		Features:   f.core(),
		Response:   response,
		Thresholds: ths,
		MaxDepth:   opt.MaxDepth,
		MinRows:    opt.MinRows,
		Opts:       q.opts(),
	})
	if err != nil {
		return nil, err
	}
	return &DecisionTree{tree: tree}, nil
}

// Nodes returns the number of evaluated tree nodes.
func (t *DecisionTree) Nodes() int { return t.tree.Nodes }

// Depth returns the trained tree depth.
func (t *DecisionTree) Depth() int { return t.tree.Depth() }

// TrainingRMSE materializes the join once for validation.
func (t *DecisionTree) TrainingRMSE(q *Query) (float64, error) {
	data, err := engine.MaterializeJoin(q.join)
	if err != nil {
		return 0, err
	}
	return t.tree.RMSE(data)
}

func (q *Query) observedRange(attr string) (float64, float64, error) {
	for _, r := range q.join.Relations {
		c := r.AttrIndex(attr)
		if c < 0 || r.NumRows() == 0 {
			continue
		}
		col := r.Col(c).F
		lo, hi := col[0], col[0]
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi, nil
	}
	return 0, 0, fmt.Errorf("borg: attribute %s not found or empty", attr)
}

// Clustering is the result of relational k-means.
type Clustering struct {
	Centers   [][]float64
	Objective float64
	Coreset   int
}

// KMeans clusters the join's tuples in the space of dims via the
// Rk-means-style grid coreset over gridAttr (Section 3.3): the coreset
// statistics come from one aggregate batch; Lloyd's algorithm never sees
// the data.
func (q *Query) KMeans(dims []string, gridAttr string, k, iters int, seed uint64) (*Clustering, error) {
	jt, err := q.tree()
	if err != nil {
		return nil, err
	}
	plan, err := core.Compile(jt, core.KMeansBatch(dims, gridAttr), q.opts())
	if err != nil {
		return nil, err
	}
	results, err := plan.Eval()
	if err != nil {
		return nil, err
	}
	coreset, err := ml.BuildCoreset(dims, results)
	if err != nil {
		return nil, err
	}
	centers, obj, err := ml.KMeans(coreset, k, iters, seed)
	if err != nil {
		return nil, err
	}
	return &Clustering{Centers: centers, Objective: obj, Coreset: len(coreset)}, nil
}

// DependencyEdge is one edge of a Chow–Liu dependency tree.
type DependencyEdge struct {
	A, B string
	MI   float64
}

// ChowLiu estimates the pairwise mutual information of the categorical
// attributes over the join and returns the maximum-spanning dependency
// tree (the "mutual inf." workload of Figure 5).
func (q *Query) ChowLiu(cats []string) ([]DependencyEdge, error) {
	jt, err := q.tree()
	if err != nil {
		return nil, err
	}
	plan, err := core.Compile(jt, core.MutualInfoBatch(cats), q.opts())
	if err != nil {
		return nil, err
	}
	results, err := plan.Eval()
	if err != nil {
		return nil, err
	}
	mi, err := ml.MutualInfo(cats, results)
	if err != nil {
		return nil, err
	}
	var out []DependencyEdge
	for _, e := range ml.ChowLiu(mi) {
		out = append(out, DependencyEdge{A: cats[e.A], B: cats[e.B], MI: e.MI})
	}
	return out, nil
}

// StreamingCovariance maintains the covariance matrix of the join's
// continuous features under live tuple inserts, using F-IVM (one
// ring-valued view hierarchy; Section 5.2 and Figure 4 right).
type StreamingCovariance struct {
	m        *ivm.FIVM
	features []string
}

// StreamCovariance creates an F-IVM maintainer over an initially empty
// copy of the query's relations.
func (q *Query) StreamCovariance(features []string) (*StreamingCovariance, error) {
	root, err := q.rootOrLargest()
	if err != nil {
		return nil, err
	}
	m, err := ivm.NewFIVM(q.join, root, features)
	if err != nil {
		return nil, err
	}
	// F-IVM's per-tuple propagation runs on the runtime's serial kernels
	// today; threading the query's runtime here keeps the facade contract
	// uniform and future bulk paths (initial loads, batch deltas) scaled.
	m.SetRuntime(q.runtime())
	return &StreamingCovariance{m: m, features: features}, nil
}

// Insert streams one tuple into the named relation. Values follow the
// Relation.Append conventions (float64/int for continuous, string for
// categorical).
func (s *StreamingCovariance) Insert(rel string, values ...any) error {
	r := s.m.Relation(rel)
	if r == nil {
		return fmt.Errorf("borg: unknown relation %s", rel)
	}
	row, err := coerceRow(r, values)
	if err != nil {
		return err
	}
	return s.m.Insert(ivm.Tuple{Rel: rel, Values: row})
}

// Count returns the maintained SUM(1) over the join.
func (s *StreamingCovariance) Count() float64 { return s.m.Count() }

// Mean returns the maintained mean of a feature, or NaN-free 0 when the
// join is still empty.
func (s *StreamingCovariance) Mean(attr string) (float64, error) {
	i, err := s.featureIndex(attr)
	if err != nil {
		return 0, err
	}
	if s.m.Count() == 0 {
		return 0, nil
	}
	return s.m.Sum(i) / s.m.Count(), nil
}

// SecondMoment returns the maintained SUM(a·b).
func (s *StreamingCovariance) SecondMoment(a, b string) (float64, error) {
	i, err := s.featureIndex(a)
	if err != nil {
		return 0, err
	}
	j, err := s.featureIndex(b)
	if err != nil {
		return 0, err
	}
	return s.m.Moment(i, j), nil
}

func (s *StreamingCovariance) featureIndex(attr string) (int, error) {
	for i, f := range s.features {
		if f == attr {
			return i, nil
		}
	}
	return 0, fmt.Errorf("borg: %s is not a maintained feature; the maintained features are %s", attr, strings.Join(s.features, ", "))
}
