// Package borg is a Go library for structure-aware machine learning over
// relational data, reproducing the systems line of "The Relational Data
// Borg is Learning" (Olteanu, VLDB 2020): models are trained on batches
// of group-by aggregates evaluated directly over the joins of a database
// — the join result is never materialized.
//
// The facade covers the end-to-end flow of the paper's Figure 2 (bottom):
//
//	db := borg.NewDatabase()
//	sales := db.AddRelation("Sales", borg.Cat("item"), borg.Num("units"))
//	items := db.AddRelation("Items", borg.Cat("item"), borg.Num("price"))
//	... append rows ...
//	q, _ := db.Query("Sales", "Items")
//	model, _ := q.LinearRegression(borg.Features{
//	    Continuous:  []string{"price"},
//	}, "units", 1e-3)
//
// For continuous workloads, Query.Serve starts a long-lived Server that
// maintains the model's sufficient statistics incrementally under
// streamed inserts (F-IVM, Section 5.2) while serving snapshot-
// consistent statistics and freshly trained models to any number of
// concurrent readers; cmd/borg-serve exposes it over HTTP.
//
// Under the facade: internal/core is the LMFAO aggregate-batch engine,
// internal/ring the covariance ring, internal/ivm the incremental
// maintenance strategies, internal/serve the concurrent serving layer,
// internal/factor the factorized representations, and internal/ml the
// models. The experiment harness reproducing the paper's evaluation
// lives in internal/bench and cmd/borg-bench.
package borg

import (
	"fmt"
	"math"
	"strings"

	"borg/internal/core"
	"borg/internal/datagen"
	"borg/internal/exec"
	"borg/internal/plan"
	"borg/internal/query"
	"borg/internal/relation"
)

// Field declares one attribute of a relation schema.
type Field struct {
	Name        string
	Categorical bool
}

// Num declares a continuous (float64) attribute.
func Num(name string) Field { return Field{Name: name} }

// Cat declares a categorical (dictionary-encoded) attribute. Attributes
// with equal names join across relations (natural-join semantics), so
// join keys must be categorical.
func Cat(name string) Field { return Field{Name: name, Categorical: true} }

// Database is a set of relations with shared attribute dictionaries.
type Database struct {
	db *relation.Database
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{db: relation.NewDatabase()}
}

// AddRelation declares a relation. It panics on duplicate names, like the
// underlying catalog.
func (d *Database) AddRelation(name string, fields ...Field) *Relation {
	attrs := make([]relation.Attribute, len(fields))
	for i, f := range fields {
		t := relation.Double
		if f.Categorical {
			t = relation.Category
		}
		attrs[i] = relation.Attribute{Name: f.Name, Type: t}
	}
	return &Relation{rel: d.db.NewRelation(name, attrs)}
}

// Relation is one table of a Database.
type Relation struct {
	rel *relation.Relation
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.rel.Name }

// Rows returns the current cardinality.
func (r *Relation) Rows() int { return r.rel.NumRows() }

// Append adds one tuple. Continuous attributes take float64 (or int),
// categorical attributes take string values, which are interned in the
// shared dictionaries.
func (r *Relation) Append(values ...any) error {
	row, err := coerceRow(r.rel, values)
	if err != nil {
		return err
	}
	r.rel.AppendRow(row...)
	return nil
}

// coerceRow converts facade values (any common Go numeric type for
// continuous, string for categorical) into relation values in schema
// order — the single conversion path shared by Relation.Append,
// StreamingCovariance.Insert, and Server.Insert/Delete/Update.
// Categorical strings are interned under the shared dictionary lock so
// that the Server entry points — the ones documented as safe for
// concurrent callers — can convert in parallel; Append and
// StreamingCovariance.Insert remain single-writer APIs (their row
// mutation happens outside any lock).
func coerceRow(r *relation.Relation, values []any) ([]relation.Value, error) {
	if len(values) != r.NumAttrs() {
		return nil, fmt.Errorf("borg: %s has %d attributes, got %d values", r.Name, r.NumAttrs(), len(values))
	}
	row := make([]relation.Value, len(values))
	for i, v := range values {
		col := r.Col(i)
		if f, ok := asFloat(v); ok {
			if col.Type != relation.Double {
				return nil, fmt.Errorf("borg: attribute %s is categorical (want a string), got %T", r.Attrs()[i].Name, v)
			}
			if math.IsNaN(f) || math.IsInf(f, 0) {
				// A NaN poisons every maintained sum and, being ≠ to
				// itself, could never be matched by a later Delete.
				return nil, fmt.Errorf("borg: attribute %s: non-finite value %v is not storable", r.Attrs()[i].Name, f)
			}
			row[i] = relation.FloatVal(f)
			continue
		}
		if x, ok := v.(string); ok {
			if col.Type != relation.Category {
				return nil, fmt.Errorf("borg: attribute %s is continuous (want a number), got %T", r.Attrs()[i].Name, v)
			}
			internMu.RLock()
			code, known := col.Dict.Lookup(x)
			internMu.RUnlock()
			if !known {
				internMu.Lock()
				code = col.Dict.Code(x)
				internMu.Unlock()
			}
			row[i] = relation.CatVal(code)
			continue
		}
		want := "a number"
		if col.Type == relation.Category {
			want = "a string"
		}
		return nil, fmt.Errorf("borg: unsupported value type %T for attribute %s (want %s)", v, r.Attrs()[i].Name, want)
	}
	return row, nil
}

// asFloat widens any common Go numeric type to float64. Large uint64 /
// int64 values lose precision past 2⁵³ exactly as a float64 column
// would store them.
func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case int32:
		return float64(x), true
	case int16:
		return float64(x), true
	case int8:
		return float64(x), true
	case uint:
		return float64(x), true
	case uint64:
		return float64(x), true
	case uint32:
		return float64(x), true
	case uint16:
		return float64(x), true
	case uint8:
		return float64(x), true
	}
	return 0, false
}

// Query is a natural join of relations — the feature-extraction query of
// the paper — ready for structure-aware learning.
type Query struct {
	db   *Database
	join *query.Join
	// Root pins the join-tree root (fact relation) and disables greedy
	// planning for this query: the planner keeps the static child order
	// instead of reordering by cardinality. Empty lets the planner pick
	// greedily — the largest relation, ties broken lexicographically by
	// name.
	Root string
	// Workers bounds the morsel-driven execution runtime's parallelism.
	// Query constructors set 2; values below 2 select the serial path.
	Workers int
	// MorselSize overrides the runtime's scan granularity (rows per
	// morsel). 0 is automatic; pin it to make results bitwise
	// reproducible across worker counts.
	MorselSize int
}

// Query builds the natural join of the named relations (all relations
// when none are named). It verifies acyclicity eagerly.
func (d *Database) Query(names ...string) (*Query, error) {
	var rels []*relation.Relation
	if len(names) == 0 {
		rels = d.db.Relations()
	} else {
		for _, n := range names {
			r := d.db.Relation(n)
			if r == nil {
				return nil, fmt.Errorf("borg: unknown relation %s", n)
			}
			rels = append(rels, r)
		}
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("borg: empty query")
	}
	j := query.NewJoin(rels...)
	if !j.IsAcyclic() {
		return nil, fmt.Errorf("borg: the join is cyclic; structure-aware evaluation requires an acyclic feature-extraction query")
	}
	return &Query{db: d, join: j, Workers: 2}, nil
}

// Features selects the model's features by attribute name.
type Features struct {
	Continuous  []string
	Categorical []string
}

func (f Features) core() []core.Feature {
	var out []core.Feature
	for _, c := range f.Continuous {
		out = append(out, core.Feature{Attr: c})
	}
	for _, g := range f.Categorical {
		out = append(out, core.Feature{Attr: g, Categorical: true})
	}
	return out
}

// plan resolves the query's execution plan through the planning layer:
// a pinned Root keeps the legacy static order; otherwise the planner
// picks root and child order greedily from live cardinalities. A pinned
// root that names no relation of the join is rejected here, with the
// available relations spelled out, instead of surfacing as an opaque
// join-tree failure downstream.
func (q *Query) plan() (*plan.Plan, error) {
	if q.Root != "" {
		for _, r := range q.join.Relations {
			if r.Name == q.Root {
				return plan.New(q.join, plan.Options{PinnedRoot: q.Root, Static: true})
			}
		}
		return nil, fmt.Errorf("borg: root %s is not a relation of the join; the join's relations are %s", q.Root, strings.Join(q.relationNames(), ", "))
	}
	return plan.New(q.join, plan.Options{})
}

func (q *Query) tree() (*query.JoinTree, error) {
	p, err := q.plan()
	if err != nil {
		return nil, err
	}
	return p.Tree, nil
}

// rootOrLargest resolves the pinned join-tree root, defaulting to the
// planner's greedy choice — the largest relation (the fact table, in
// the evaluated schemas), ties broken lexicographically by name so the
// root is deterministic across runs. Shared by the streaming and
// serving facades.
func (q *Query) rootOrLargest() (string, error) {
	p, err := q.plan()
	if err != nil {
		return "", err
	}
	return p.Root, nil
}

// relationNames lists the join's relations in declaration order.
func (q *Query) relationNames() []string {
	out := make([]string, len(q.join.Relations))
	for i, r := range q.join.Relations {
		out[i] = r.Name
	}
	return out
}

func (q *Query) opts() core.Options {
	return core.Options{Specialize: true, Share: true, Runtime: q.runtime()}
}

// runtime resolves the query's exec.Runtime — the single parallelism
// config threaded from the facade through core, engine, and ivm.
func (q *Query) runtime() exec.Runtime {
	w := q.Workers
	if w <= 0 {
		w = 1
	}
	return exec.Runtime{Workers: w, MorselSize: q.MorselSize}
}

// Dataset wraps one of the built-in synthetic evaluation datasets with
// its default feature lists.
type Dataset struct {
	*Query
	Name     string
	Feats    Features
	Response string
	GridAttr string
	inner    *datagen.Dataset
}

// GenerateDataset builds a synthetic evaluation dataset ("retailer",
// "favorita", "yelp", "tpcds") at the given seed and scale factor.
func GenerateDataset(name string, seed uint64, sf float64) (*Dataset, error) {
	d, err := datagen.ByName(name, seed, sf)
	if err != nil {
		return nil, err
	}
	wrapped := &Database{db: d.DB}
	q := &Query{db: wrapped, join: d.Join, Root: d.Root, Workers: 2}
	return &Dataset{
		Query:    q,
		Name:     d.Name,
		Feats:    Features{Continuous: d.Cont, Categorical: d.Cat},
		Response: d.Response,
		GridAttr: d.GridAttr,
		inner:    d,
	}, nil
}

// Database exposes the dataset's relations (for streaming replays and
// CSV export).
func (d *Dataset) Database() *Database { return d.Query.db }

// Relation returns a relation of the database by name, or nil.
func (d *Database) Relation(name string) *Relation {
	r := d.db.Relation(name)
	if r == nil {
		return nil
	}
	return &Relation{rel: r}
}
