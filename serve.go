package borg

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"borg/internal/ivm"
	"borg/internal/obs"
	"borg/internal/relation"
	"borg/internal/ring"
	"borg/internal/serve"
)

// internMu guards dictionary interning across all servers: same-named
// categorical attributes share one Dict database-wide (and with the
// source database), so concurrent Insert callers — even on different
// servers over the same database — must not race on it. Steady-state
// conversions (values already interned) take only the read lock, so
// concurrent producers do not serialize on known categories.
var internMu sync.RWMutex

// Payload selects which ring statistics a server maintains — the
// payload of the relational ring its IVM strategy carries.
type Payload = serve.Payload

const (
	// PayloadCovar maintains the continuous covariance triple
	// (COUNT/SUM/second moments) — the default, sufficient for linear
	// regression, PCA and k-means seeding.
	PayloadCovar = serve.PayloadCovar
	// PayloadPoly2 additionally maintains every moment of total degree
	// ≤ 4 — the sufficient statistics of degree-2 polynomial regression.
	PayloadPoly2 = serve.PayloadPoly2
	// PayloadCofactor maintains the categorical cofactor ring: the
	// covariance statistics per group of categorical values, the
	// sufficient statistics of the mixed continuous/categorical zoo
	// (one-hot regression, Chow–Liu, categorical trees, LS-SVM).
	PayloadCofactor = serve.PayloadCofactor
)

// ServerOptions tunes a Server. The zero value selects F-IVM maintenance
// of the covariance payload with the default batching knobs.
type ServerOptions struct {
	// Strategy is the IVM maintenance strategy: "fivm" (default, one
	// ring-valued view hierarchy), "higher-order" (one view hierarchy
	// per aggregate), or "first-order" (no views, full delta joins).
	Strategy string
	// BatchSize is how many applied inserts force a snapshot
	// publication (default 64).
	BatchSize int
	// FlushInterval bounds snapshot staleness: a partial batch is
	// published after this long (default 1ms).
	FlushInterval time.Duration
	// QueueDepth is the ingest queue capacity; full queues apply
	// backpressure to Insert callers (default 1024).
	QueueDepth int
	// Workers sizes the worker pool the maintainer's delta scans and
	// morsel-parallel batch application run on. 0 falls back to the
	// query's Workers and, when that is also unset, to
	// runtime.GOMAXPROCS(0) — use all cores; 1 or negative selects the
	// serial kernels explicitly. The resolved value is reported by
	// ServerStats.Workers.
	Workers int
	// Payload selects the maintained ring statistics (PayloadCovar,
	// PayloadPoly2, PayloadCofactor). The zero value is PayloadCovar.
	Payload Payload
	// Lifted is the pre-Payload flag for the lifted degree-2 ring.
	//
	// Deprecated: set Payload: PayloadPoly2 instead. Lifted: true is
	// honored as an alias when Payload is unset.
	Lifted bool
	// ReplanThreshold opts into automatic replanning on greedy-planned
	// servers (Query.Root unset): when the plan drift ratio — the
	// largest live relation cardinality over the current join-tree
	// root's — reaches this value at a flush boundary, the writer
	// replans greedily and rebuilds under the new variable order (see
	// Server.Replan). 0 disables auto-replanning; a pinned Query.Root
	// is never overridden. Values below 1 make no sense (drift is ≥ 1
	// whenever the root is still the largest relation); 2–10 are
	// sensible production thresholds.
	ReplanThreshold float64
	// Logger receives structured operational logs (slog): epoch
	// publications at Debug, replans at Info, rejected ops and slow
	// batches at Warn. Nil disables logging.
	Logger *slog.Logger
	// SlowBatchThreshold, when positive, logs a Warn for any batch
	// whose application exceeds it. 0 disables the warning.
	SlowBatchThreshold time.Duration
}

// Ingestor is the write-side API every serving tier satisfies: Server
// and ShardedServer expose identical ingest surfaces, so replays,
// examples and tests can take either. Values follow the Relation.Append
// conventions (any Go numeric type for continuous attributes, string
// for categorical). All methods are safe for any number of concurrent
// callers; Insert/Delete/Update block only when an ingest queue is
// full.
type Ingestor interface {
	Insert(rel string, values ...any) error
	Delete(rel string, values ...any) error
	Update(rel string, oldValues, newValues []any) error
	Flush() error
	Err() error
	Close() error
}

var (
	_ Ingestor = (*Server)(nil)
	_ Ingestor = (*ShardedServer)(nil)
)

// ingestSink is the internal surface the serving tiers already share —
// tuple-level ingest on converted rows plus schema lookup. Both
// serve.Server and shard.Server satisfy it.
type ingestSink interface {
	Schema(rel string) *relation.Relation
	Insert(t ivm.Tuple) error
	Delete(t ivm.Tuple) error
	Update(oldT, newT ivm.Tuple) error
	Flush() error
	Err() error
	Close() error
}

// ingestAPI is the shared facade ingest plumbing: one coerce/enqueue
// path embedded by Server and ShardedServer, so the value-conversion
// conventions cannot drift between the tiers.
type ingestAPI struct {
	sink ingestSink
}

// Insert enqueues one tuple insert into the named relation. Values
// follow the Relation.Append conventions (any Go numeric type for
// continuous, string for categorical). Insert is safe for any number of
// concurrent callers; it blocks only when the ingest queue is full. On
// a sharded server the tuple is routed to its shard by the partition
// hash.
func (a ingestAPI) Insert(rel string, values ...any) error {
	row, err := a.coerce(rel, values)
	if err != nil {
		return err
	}
	return a.sink.Insert(ivm.Tuple{Rel: rel, Values: row})
}

// Delete enqueues the retraction of one previously inserted tuple,
// identified by value (multiset semantics: one equal-valued occurrence
// is removed). Values follow the same conventions as Insert. Like
// Insert it is safe for concurrent callers; a delete whose target is
// not live when applied surfaces as a maintenance error via Flush and
// Close. Callers that need insert-before-delete ordering issue both
// from the same goroutine — the ingest queues preserve per-producer
// order, and on a sharded server equal values hash to the same shard.
func (a ingestAPI) Delete(rel string, values ...any) error {
	row, err := a.coerce(rel, values)
	if err != nil {
		return err
	}
	return a.sink.Delete(ivm.Tuple{Rel: rel, Values: row})
}

// Update enqueues a correction: the tuple equal to oldValues is
// retracted and the newValues tuple inserted, applied back to back by
// one writer so no published snapshot shows the join with neither (or
// both). The update is strict — when no live tuple matches oldValues,
// nothing is inserted and the error surfaces via Flush/Close. Sharded
// servers reject updates that change the partition attribute; issue an
// explicit Delete and Insert to move a tuple across shards.
func (a ingestAPI) Update(rel string, oldValues, newValues []any) error {
	oldRow, err := a.coerce(rel, oldValues)
	if err != nil {
		return err
	}
	newRow, err := a.coerce(rel, newValues)
	if err != nil {
		return err
	}
	return a.sink.Update(ivm.Tuple{Rel: rel, Values: oldRow}, ivm.Tuple{Rel: rel, Values: newRow})
}

// coerce resolves the relation schema and converts one facade value
// row. Shards share dictionaries, so one conversion is valid on every
// shard.
func (a ingestAPI) coerce(rel string, values []any) ([]relation.Value, error) {
	r := a.sink.Schema(rel)
	if r == nil {
		return nil, fmt.Errorf("borg: unknown relation %s", rel)
	}
	return coerceRow(r, values)
}

// Flush is a write barrier: it returns once every op enqueued before
// the call is applied and visible in the current snapshot (on a sharded
// server, in the merged snapshot — all shard barriers run concurrently,
// two-phase).
func (a ingestAPI) Flush() error { return a.sink.Flush() }

// Err reports the first maintenance error the writer has encountered
// (nil while healthy) — the way asynchronous failures like a delete
// whose target was never live become observable without a Flush
// barrier. Flush and Close return the same error.
func (a ingestAPI) Err() error { return a.sink.Err() }

// Close drains already-queued ops, publishes a final snapshot, and
// stops the writer(s). Producers that need every insert applied call
// Flush first. Close is idempotent.
func (a ingestAPI) Close() error { return a.sink.Close() }

// Server is the concurrent streaming-serving layer: a long-lived session
// that owns an initially empty copy of the query's relations plus an IVM
// maintainer, ingests inserts through a batching queue applied by a
// single writer goroutine, and serves snapshot-consistent statistics and
// model reads to any number of concurrent readers. Reads are one atomic
// pointer load — they never block the writer, and the writer never waits
// for readers (epoch/copy-on-write handoff).
type Server struct {
	ingestAPI
	inner       *serve.Server
	features    []string
	catFeatures []string
	dicts       map[string]*relation.Dict
	mobs        *modelObs
}

// Serve starts a server maintaining the selected payload's statistics
// of the given features over an initially empty copy of the query's
// relations. With PayloadCovar or PayloadPoly2 every feature must be
// continuous; with PayloadCofactor categorical features become the
// cofactor group-by slots. Close it when done.
func (q *Query) Serve(features []string, opt ServerOptions) (*Server, error) {
	strategy, err := serve.ParseStrategy(opt.Strategy)
	if err != nil {
		return nil, err
	}
	if opt.Workers == 0 {
		// The query's parallelism config is the facade-wide default;
		// pass ServerOptions{Workers: 1} for explicitly serial kernels.
		opt.Workers = q.Workers
	}
	// A pinned Query.Root passes through and disables greedy planning;
	// an empty root hands the choice to the planning layer (greedy from
	// live cardinalities, replannable). Validate the pin here so the
	// error names the facade, not the planner.
	if q.Root != "" {
		if _, err := q.rootOrLargest(); err != nil {
			return nil, err
		}
	}
	inner, err := serve.New(q.join, q.Root, features, serve.Config{
		Strategy:           strategy,
		BatchSize:          opt.BatchSize,
		FlushInterval:      opt.FlushInterval,
		QueueDepth:         opt.QueueDepth,
		Workers:            opt.Workers,
		MorselSize:         q.MorselSize,
		Payload:            opt.Payload,
		Lifted:             opt.Lifted,
		ReplanThreshold:    opt.ReplanThreshold,
		Logger:             opt.Logger,
		SlowBatchThreshold: opt.SlowBatchThreshold,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		ingestAPI:   ingestAPI{sink: inner},
		inner:       inner,
		features:    inner.Features(),
		catFeatures: inner.CatFeatures(),
		dicts:       q.dicts(inner.CatFeatures()),
	}
	if reg := inner.Metrics(); reg != nil {
		s.mobs = newModelObs(reg)
	}
	return s, nil
}

// dicts resolves the shared dictionaries of the named categorical
// attributes (models trained on cofactor snapshots translate category
// strings through them).
func (q *Query) dicts(attrs []string) map[string]*relation.Dict {
	if len(attrs) == 0 {
		return nil
	}
	out := make(map[string]*relation.Dict, len(attrs))
	for _, a := range attrs {
		out[a] = q.dict(a)
	}
	return out
}

// Features returns the maintained continuous features, in statistics
// order.
func (s *Server) Features() []string { return s.features }

// CatFeatures returns the maintained categorical features (cofactor
// group-by slots), in slot order; empty unless the server runs
// PayloadCofactor.
func (s *Server) CatFeatures() []string { return s.catFeatures }

// Payload reports which ring statistics the server maintains.
func (s *Server) Payload() Payload { return s.inner.Payload() }

// Metrics returns the registry holding the server's metric series —
// ingest, batching, publication, plan, and model-training telemetry
// (see internal/obs). Serve it with Registry.WriteExposition or embed
// Registry.Snapshot in a stats payload.
func (s *Server) Metrics() *obs.Registry { return s.inner.Metrics() }

// ServerStats is a point-in-time health view of a server.
type ServerStats struct {
	// Epoch is the published snapshot sequence number.
	Epoch uint64
	// Inserts counts tuple inserts applied as of the current snapshot
	// (the insert half of an update counts here).
	Inserts uint64
	// Deletes counts tuple deletes applied as of the current snapshot
	// (the retraction half of an update counts here).
	Deletes uint64
	// Queued counts ops enqueued or applied but not yet covered by a
	// published snapshot — including the batch the writer is currently
	// holding, so Queued==0 means the snapshot is current.
	Queued int
	// Count is SUM(1) over the join at the current snapshot.
	Count float64
	// Workers is the resolved worker-pool size batches are applied with
	// (ServerOptions.Workers after defaulting — a zero option on an
	// N-core machine reports N). On a sharded server the aggregate row
	// reports the per-shard value; total ingest parallelism is
	// Workers × the shard count.
	Workers int
	// Root is the join-tree root the maintainer is currently planned
	// under (on a sharded server: shard 0's root; all shards agree
	// unless per-shard auto-replans diverged them).
	Root string
	// PlanDepth is the longest root-to-leaf chain of the current plan's
	// variable order; PlanWidth its factorization width (1 = acyclic).
	PlanDepth int
	PlanWidth int
	// Drift is the plan-drift ratio at the current snapshot: largest
	// live relation cardinality over the root's. 1.0 means the root is
	// still the largest relation; larger values mean churn has skewed
	// relative sizes away from the plan. On a sharded server the
	// aggregate row reports the maximum across shards.
	Drift float64
	// Replans counts completed plan rebuilds (summed across shards on a
	// sharded server).
	Replans uint64
}

// Stats reports the server's current epoch, applied op counts, queue
// depth, and join cardinality.
func (s *Server) Stats() ServerStats {
	snap := s.inner.Snapshot()
	return ServerStats{
		Epoch:     snap.Epoch,
		Inserts:   snap.Inserts,
		Deletes:   snap.Deletes,
		Queued:    s.inner.QueueLen(),
		Count:     snap.Count(),
		Workers:   s.inner.Workers(),
		Root:      snap.Root,
		PlanDepth: snap.PlanDepth,
		PlanWidth: snap.PlanWidth,
		Drift:     snap.Drift,
		Replans:   snap.Replans,
	}
}

// Replan re-plans the server greedily from live cardinalities and, when
// the greedy root differs from the current one, rebuilds the maintainer
// under the new variable order — behind the writer, so concurrent
// Insert/Delete/Update callers keep enqueueing and readers keep loading
// snapshots throughout; the rebuilt epoch is swapped in atomically
// before Replan returns, so no reader ever observes a mixed state. Any
// valid variable order maintains the same ring statistics, so models
// before and after agree to float tolerance. Cost is one batch
// reingest of the live rows. Replan also re-enables greedy planning on
// a server whose Query.Root was pinned at construction.
func (s *Server) Replan() error { return s.inner.Replan() }

// Count returns SUM(1) over the join at the current snapshot.
func (s *Server) Count() float64 { return s.inner.Snapshot().Count() }

// Mean returns the mean of a maintained feature at the current snapshot
// (ErrEmptySnapshot while the join is empty — never NaN).
func (s *Server) Mean(attr string) (float64, error) {
	return s.CovarSnapshot().Mean(attr)
}

// SecondMoment returns SUM(a·b) at the current snapshot.
func (s *Server) SecondMoment(a, b string) (float64, error) {
	return s.CovarSnapshot().SecondMoment(a, b)
}

// TrainLinReg trains a ridge linear regression of the response on the
// remaining maintained features, entirely from the current snapshot's
// statistics — no data access, no interruption of the write path.
func (s *Server) TrainLinReg(response string, lambda float64) (*LinearRegression, error) {
	return s.CovarSnapshot().TrainLinReg(response, lambda)
}

// CovarSnapshot freezes the current epoch: an immutable view of the
// maintained statistics on which any number of reads and trainings can
// run while inserts continue.
func (s *Server) CovarSnapshot() *ServerSnapshot {
	return &ServerSnapshot{snap: s.inner.Snapshot(), features: s.features, catFeatures: s.catFeatures, dicts: s.dicts, obs: s.mobs}
}

// ServerSnapshot is one published epoch of a Server: every read on it
// observes the same consistent state.
type ServerSnapshot struct {
	snap        *serve.Snapshot
	features    []string
	catFeatures []string
	dicts       map[string]*relation.Dict
	// obs instruments trainings run on this snapshot (nil = off).
	obs *modelObs
}

// Epoch returns the snapshot's publication sequence number.
func (s *ServerSnapshot) Epoch() uint64 { return s.snap.Epoch }

// Inserts returns how many tuple inserts had been applied at this epoch.
func (s *ServerSnapshot) Inserts() uint64 { return s.snap.Inserts }

// Deletes returns how many tuple deletes had been applied at this epoch.
func (s *ServerSnapshot) Deletes() uint64 { return s.snap.Deletes }

// Count returns SUM(1) over the join at this epoch.
func (s *ServerSnapshot) Count() float64 { return s.snap.Count() }

// Features returns the maintained continuous features, in statistics
// order.
func (s *ServerSnapshot) Features() []string { return s.features }

// CatFeatures returns the maintained categorical features, in cofactor
// slot order; empty unless the payload is PayloadCofactor.
func (s *ServerSnapshot) CatFeatures() []string { return s.catFeatures }

// Payload reports which ring statistics this epoch carries.
func (s *ServerSnapshot) Payload() Payload {
	switch {
	case s.snap.Cofactor != nil:
		return PayloadCofactor
	case s.snap.Lifted != nil:
		return PayloadPoly2
	}
	return PayloadCovar
}

// Mean returns the mean of a maintained feature at this epoch. A
// snapshot of an empty join — never populated, or churned to empty by
// deletes — returns ErrEmptySnapshot: dividing by the zero count would
// be NaN, and a silent 0 would be indistinguishable from a real zero
// mean.
func (s *ServerSnapshot) Mean(attr string) (float64, error) {
	i, err := s.featureIndex(attr)
	if err != nil {
		return 0, err
	}
	if err := s.ready(); err != nil {
		return 0, err
	}
	return s.snap.Sum(i) / s.snap.Count(), nil
}

// SecondMoment returns SUM(a·b) at this epoch (ErrEmptySnapshot on an
// empty snapshot, consistently with every other statistics read).
func (s *ServerSnapshot) SecondMoment(a, b string) (float64, error) {
	i, err := s.featureIndex(a)
	if err != nil {
		return 0, err
	}
	j, err := s.featureIndex(b)
	if err != nil {
		return 0, err
	}
	if err := s.ready(); err != nil {
		return 0, err
	}
	return s.snap.Moment(i, j), nil
}

// Covar exposes the epoch's raw covariance triple (read-only).
func (s *ServerSnapshot) Covar() *ring.Covar { return s.snap.Stats }

// Cofactor exposes the epoch's raw categorical cofactor element
// (read-only), nil unless the payload is PayloadCofactor.
func (s *ServerSnapshot) Cofactor() *ring.Cofactor { return s.snap.Cofactor }

// TrainLinReg trains a ridge linear regression of the response on the
// remaining maintained features from this epoch's statistics, with the
// default gradient-descent budget (TrainLinRegGD exposes the knobs). On
// a PayloadCofactor server the design additionally one-hot encodes the
// categorical features. An empty snapshot returns ErrEmptySnapshot.
func (s *ServerSnapshot) TrainLinReg(response string, lambda float64) (*LinearRegression, error) {
	return s.TrainLinRegGD(response, lambda, GDOptions{})
}

func (s *ServerSnapshot) featureIndex(attr string) (int, error) {
	for i, f := range s.features {
		if f == attr {
			return i, nil
		}
	}
	avail := s.features
	if len(s.catFeatures) > 0 {
		avail = append(append([]string(nil), s.features...), s.catFeatures...)
	}
	return 0, fmt.Errorf("borg: %s is not a maintained continuous feature; the maintained features are %s", attr, strings.Join(avail, ", "))
}
