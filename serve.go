package borg

import (
	"fmt"
	"sync"
	"time"

	"borg/internal/ivm"
	"borg/internal/relation"
	"borg/internal/ring"
	"borg/internal/serve"
)

// internMu guards dictionary interning across all servers: same-named
// categorical attributes share one Dict database-wide (and with the
// source database), so concurrent Insert callers — even on different
// servers over the same database — must not race on it. Steady-state
// conversions (values already interned) take only the read lock, so
// concurrent producers do not serialize on known categories.
var internMu sync.RWMutex

// ServerOptions tunes a Server. The zero value selects F-IVM maintenance
// with the default batching knobs.
type ServerOptions struct {
	// Strategy is the IVM maintenance strategy: "fivm" (default, one
	// ring-valued view hierarchy), "higher-order" (one view hierarchy
	// per aggregate), or "first-order" (no views, full delta joins).
	Strategy string
	// BatchSize is how many applied inserts force a snapshot
	// publication (default 64).
	BatchSize int
	// FlushInterval bounds snapshot staleness: a partial batch is
	// published after this long (default 1ms).
	FlushInterval time.Duration
	// QueueDepth is the ingest queue capacity; full queues apply
	// backpressure to Insert callers (default 1024).
	QueueDepth int
	// Workers sizes the worker pool the maintainer's delta scans and
	// morsel-parallel batch application run on. 0 falls back to the
	// query's Workers and, when that is also unset, to
	// runtime.GOMAXPROCS(0) — use all cores; 1 or negative selects the
	// serial kernels explicitly. The resolved value is reported by
	// ServerStats.Workers.
	Workers int
	// Lifted additionally maintains the lifted degree-2 ring — every
	// moment of total degree ≤ 4 over the features, the sufficient
	// statistics of degree-2 polynomial regression (TrainPolyReg).
	// Maintenance cost grows by a constant factor in the payload size.
	Lifted bool
}

// Server is the concurrent streaming-serving layer: a long-lived session
// that owns an initially empty copy of the query's relations plus an IVM
// maintainer, ingests inserts through a batching queue applied by a
// single writer goroutine, and serves snapshot-consistent statistics and
// model reads to any number of concurrent readers. Reads are one atomic
// pointer load — they never block the writer, and the writer never waits
// for readers (epoch/copy-on-write handoff).
type Server struct {
	inner    *serve.Server
	features []string
}

// Serve starts a server maintaining the covariance statistics of the
// given continuous features over an initially empty copy of the query's
// relations. Close it when done.
func (q *Query) Serve(features []string, opt ServerOptions) (*Server, error) {
	strategy, err := serve.ParseStrategy(opt.Strategy)
	if err != nil {
		return nil, err
	}
	if opt.Workers == 0 {
		// The query's parallelism config is the facade-wide default;
		// pass ServerOptions{Workers: 1} for explicitly serial kernels.
		opt.Workers = q.Workers
	}
	inner, err := serve.New(q.join, q.rootOrLargest(), features, serve.Config{
		Strategy:      strategy,
		BatchSize:     opt.BatchSize,
		FlushInterval: opt.FlushInterval,
		QueueDepth:    opt.QueueDepth,
		Workers:       opt.Workers,
		MorselSize:    q.MorselSize,
		Lifted:        opt.Lifted,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner, features: inner.Features()}, nil
}

// Insert enqueues one tuple insert into the named relation. Values
// follow the Relation.Append conventions (any Go numeric type for
// continuous, string for categorical). Insert is safe for any number of
// concurrent callers; it blocks only when the ingest queue is full.
func (s *Server) Insert(rel string, values ...any) error {
	row, err := s.coerce(rel, values)
	if err != nil {
		return err
	}
	return s.inner.Insert(ivm.Tuple{Rel: rel, Values: row})
}

// Delete enqueues the retraction of one previously inserted tuple,
// identified by value (multiset semantics: one equal-valued occurrence
// is removed). Values follow the same conventions as Insert. Like
// Insert it is safe for concurrent callers; a delete whose target is
// not live when applied surfaces as a maintenance error via Flush and
// Close. Callers that need insert-before-delete ordering issue both
// from the same goroutine — the ingest queue preserves per-producer
// order.
func (s *Server) Delete(rel string, values ...any) error {
	row, err := s.coerce(rel, values)
	if err != nil {
		return err
	}
	return s.inner.Delete(ivm.Tuple{Rel: rel, Values: row})
}

// Update enqueues a correction: the tuple equal to oldValues is
// retracted and the newValues tuple inserted, applied back to back by
// the writer so no published snapshot shows the join with neither (or
// both). The update is strict — when no live tuple matches oldValues,
// nothing is inserted and the error surfaces via Flush/Close.
func (s *Server) Update(rel string, oldValues, newValues []any) error {
	oldRow, err := s.coerce(rel, oldValues)
	if err != nil {
		return err
	}
	newRow, err := s.coerce(rel, newValues)
	if err != nil {
		return err
	}
	return s.inner.Update(ivm.Tuple{Rel: rel, Values: oldRow}, ivm.Tuple{Rel: rel, Values: newRow})
}

// coerce resolves the relation schema and converts one facade value row.
func (s *Server) coerce(rel string, values []any) ([]relation.Value, error) {
	r := s.inner.Schema(rel)
	if r == nil {
		return nil, fmt.Errorf("borg: unknown relation %s", rel)
	}
	return coerceRow(r, values)
}

// Flush is a write barrier: it returns once every op enqueued before
// the call is applied and visible in the current snapshot.
func (s *Server) Flush() error { return s.inner.Flush() }

// Err reports the first maintenance error the writer has encountered
// (nil while healthy) — the way asynchronous failures like a delete
// whose target was never live become observable without a Flush
// barrier. Flush and Close return the same error.
func (s *Server) Err() error { return s.inner.Err() }

// Close drains already-queued inserts, publishes a final snapshot, and
// stops the writer. Producers that need every insert applied call Flush
// first. Close is idempotent.
func (s *Server) Close() error { return s.inner.Close() }

// ServerStats is a point-in-time health view of a server.
type ServerStats struct {
	// Epoch is the published snapshot sequence number.
	Epoch uint64
	// Inserts counts tuple inserts applied as of the current snapshot
	// (the insert half of an update counts here).
	Inserts uint64
	// Deletes counts tuple deletes applied as of the current snapshot
	// (the retraction half of an update counts here).
	Deletes uint64
	// Queued counts ops enqueued or applied but not yet covered by a
	// published snapshot — including the batch the writer is currently
	// holding, so Queued==0 means the snapshot is current.
	Queued int
	// Count is SUM(1) over the join at the current snapshot.
	Count float64
	// Workers is the resolved worker-pool size batches are applied with
	// (ServerOptions.Workers after defaulting — a zero option on an
	// N-core machine reports N). On a sharded server the aggregate row
	// reports the per-shard value; total ingest parallelism is
	// Workers × the shard count.
	Workers int
}

// Stats reports the server's current epoch, applied op counts, queue
// depth, and join cardinality.
func (s *Server) Stats() ServerStats {
	snap := s.inner.Snapshot()
	return ServerStats{
		Epoch:   snap.Epoch,
		Inserts: snap.Inserts,
		Deletes: snap.Deletes,
		Queued:  s.inner.QueueLen(),
		Count:   snap.Count(),
		Workers: s.inner.Workers(),
	}
}

// Count returns SUM(1) over the join at the current snapshot.
func (s *Server) Count() float64 { return s.inner.Snapshot().Count() }

// Mean returns the mean of a maintained feature at the current snapshot
// (ErrEmptySnapshot while the join is empty — never NaN).
func (s *Server) Mean(attr string) (float64, error) {
	return s.CovarSnapshot().Mean(attr)
}

// SecondMoment returns SUM(a·b) at the current snapshot.
func (s *Server) SecondMoment(a, b string) (float64, error) {
	return s.CovarSnapshot().SecondMoment(a, b)
}

// TrainLinReg trains a ridge linear regression of the response on the
// remaining maintained features, entirely from the current snapshot's
// statistics — no data access, no interruption of the write path.
func (s *Server) TrainLinReg(response string, lambda float64) (*LinearRegression, error) {
	return s.CovarSnapshot().TrainLinReg(response, lambda)
}

// CovarSnapshot freezes the current epoch: an immutable view of the
// maintained statistics on which any number of reads and trainings can
// run while inserts continue.
func (s *Server) CovarSnapshot() *ServerSnapshot {
	return &ServerSnapshot{snap: s.inner.Snapshot(), features: s.features}
}

// ServerSnapshot is one published epoch of a Server: every read on it
// observes the same consistent state.
type ServerSnapshot struct {
	snap     *serve.Snapshot
	features []string
}

// Epoch returns the snapshot's publication sequence number.
func (s *ServerSnapshot) Epoch() uint64 { return s.snap.Epoch }

// Inserts returns how many tuple inserts had been applied at this epoch.
func (s *ServerSnapshot) Inserts() uint64 { return s.snap.Inserts }

// Deletes returns how many tuple deletes had been applied at this epoch.
func (s *ServerSnapshot) Deletes() uint64 { return s.snap.Deletes }

// Count returns SUM(1) over the join at this epoch.
func (s *ServerSnapshot) Count() float64 { return s.snap.Count() }

// Mean returns the mean of a maintained feature at this epoch. A
// snapshot of an empty join — never populated, or churned to empty by
// deletes — returns ErrEmptySnapshot: dividing by the zero count would
// be NaN, and a silent 0 would be indistinguishable from a real zero
// mean.
func (s *ServerSnapshot) Mean(attr string) (float64, error) {
	i, err := s.featureIndex(attr)
	if err != nil {
		return 0, err
	}
	if err := s.ready(); err != nil {
		return 0, err
	}
	return s.snap.Sum(i) / s.snap.Count(), nil
}

// SecondMoment returns SUM(a·b) at this epoch (ErrEmptySnapshot on an
// empty snapshot, consistently with every other statistics read).
func (s *ServerSnapshot) SecondMoment(a, b string) (float64, error) {
	i, err := s.featureIndex(a)
	if err != nil {
		return 0, err
	}
	j, err := s.featureIndex(b)
	if err != nil {
		return 0, err
	}
	if err := s.ready(); err != nil {
		return 0, err
	}
	return s.snap.Moment(i, j), nil
}

// Covar exposes the epoch's raw covariance triple (read-only).
func (s *ServerSnapshot) Covar() *ring.Covar { return s.snap.Stats }

// TrainLinReg trains a ridge linear regression of the response on the
// remaining maintained features from this epoch's statistics, with the
// default gradient-descent budget (TrainLinRegGD exposes the knobs). An
// empty snapshot returns ErrEmptySnapshot.
func (s *ServerSnapshot) TrainLinReg(response string, lambda float64) (*LinearRegression, error) {
	return s.TrainLinRegGD(response, lambda, GDOptions{})
}

func (s *ServerSnapshot) featureIndex(attr string) (int, error) {
	for i, f := range s.features {
		if f == attr {
			return i, nil
		}
	}
	return 0, fmt.Errorf("borg: %s is not a maintained feature", attr)
}
