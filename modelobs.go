package borg

import (
	"errors"
	"time"

	"borg/internal/obs"
)

// modelKinds are the zoo's model kinds in the spelling the serving API
// uses; the per-kind training series pre-register under these labels so
// a scrape shows the whole zoo even before the first training.
var modelKinds = []string{"linreg", "polyreg", "pca", "kmeans", "chowliu", "ctree", "svm"}

// modelObs instruments the model zoo: per-kind training latency and
// counts, plus typed-error counters classed by what went wrong (empty
// snapshot, payload not maintained, other). Trainings run at read
// frequency, far off the ingest hot path, so the handles resolve lazily
// through the registry. A nil *modelObs disables instrumentation — the
// snapshots of an uninstrumented server carry nil.
type modelObs struct {
	reg *obs.Registry
}

const (
	trainNsHelp    = "Nanoseconds per snapshot model training, by model kind."
	trainTotalHelp = "Completed snapshot model trainings, by model kind."
	trainErrsHelp  = "Failed snapshot model trainings, by kind and error class (empty, payload, other)."
)

// newModelObs binds the zoo series into reg, pre-registering the
// success series of every kind.
func newModelObs(reg *obs.Registry) *modelObs {
	for _, kind := range modelKinds {
		reg.Counter("borg_model_train_total", trainTotalHelp, obs.Labels{"kind": kind})
		reg.Histogram("borg_model_train_ns", trainNsHelp, obs.Labels{"kind": kind})
	}
	return &modelObs{reg: reg}
}

// obsTrain records one training outcome; defer it with the trainer's
// named error so success timing and error classing share one site:
//
//	func (s *ServerSnapshot) TrainX(...) (m *X, err error) {
//		defer s.obsTrain("x", time.Now(), &err)
func (s *ServerSnapshot) obsTrain(kind string, start time.Time, errp *error) {
	o := s.obs
	if o == nil {
		return
	}
	if err := *errp; err != nil {
		class := "other"
		switch {
		case errors.Is(err, ErrEmptySnapshot):
			class = "empty"
		case errors.Is(err, ErrPayloadNotMaintained):
			class = "payload"
		}
		o.reg.Counter("borg_model_train_errors_total", trainErrsHelp, obs.Labels{"kind": kind, "class": class}).Inc()
		return
	}
	o.reg.Counter("borg_model_train_total", trainTotalHelp, obs.Labels{"kind": kind}).Inc()
	o.reg.Histogram("borg_model_train_ns", trainNsHelp, obs.Labels{"kind": kind}).Observe(int64(time.Since(start)))
}
