package borg

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// replanChurn drives writer w's slice of the stream into the server,
// deleting ~20% of its own previously inserted Sales rows (per-producer
// FIFO makes the delete always find its target live). The deletion
// schedule is a pure function of (w, position), so survivors() can
// recompute the exact surviving multiset without observing the run.
func replanChurn(t *testing.T, ing Ingestor, stream []serverTuple, w, writers int) {
	t.Helper()
	var live []serverTuple
	state := uint64(w)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for i := w; i < len(stream); i += writers {
		tp := stream[i]
		if err := ing.Insert(tp.rel, tp.values...); err != nil {
			t.Error(err)
			return
		}
		if tp.rel != "Sales" {
			continue
		}
		live = append(live, tp)
		if next(100) < 20 {
			k := next(len(live))
			if err := ing.Delete(live[k].rel, live[k].values...); err != nil {
				t.Error(err)
				return
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
}

// replanSurvivors replays every writer's deterministic churn schedule
// offline and returns the surviving tuple multiset.
func replanSurvivors(stream []serverTuple, writers int) []serverTuple {
	var out []serverTuple
	for w := 0; w < writers; w++ {
		var live []serverTuple
		state := uint64(w)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int(state>>33) % n
		}
		for i := w; i < len(stream); i += writers {
			tp := stream[i]
			if tp.rel != "Sales" {
				out = append(out, tp)
				continue
			}
			live = append(live, tp)
			if next(100) < 20 {
				k := next(len(live))
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		out = append(out, live...)
	}
	return out
}

// recomputeSharded is recomputeBatch for the shardedSchema shape:
// Sales(store,item,units) ⨝ Catalog(store,item,price) ⨝ Stores(store,area).
func recomputeSharded(stream []serverTuple, features []string) (float64, []float64, [][]float64) {
	price := make(map[string]float64)
	area := make(map[string]float64)
	for _, tp := range stream {
		switch tp.rel {
		case "Catalog":
			price[tp.values[0].(string)+"|"+tp.values[1].(string)] = float64(tp.values[2].(int))
		case "Stores":
			area[tp.values[0].(string)] = float64(tp.values[1].(int))
		}
	}
	count := 0.0
	sums := make([]float64, len(features))
	moments := make([][]float64, len(features))
	for i := range moments {
		moments[i] = make([]float64, len(features))
	}
	for _, tp := range stream {
		if tp.rel != "Sales" {
			continue
		}
		p, okP := price[tp.values[0].(string)+"|"+tp.values[1].(string)]
		a, okA := area[tp.values[0].(string)]
		if !okP || !okA {
			continue
		}
		row := []float64{float64(tp.values[2].(int)), p, a}
		count++
		for i := range row {
			sums[i] += row[i]
			for k := range row {
				moments[i][k] += row[i] * row[k]
			}
		}
	}
	return count, sums, moments
}

// checkStats compares the snapshot's statistics bitwise against an
// engine-independent recompute (integer data, so exact equality is the
// bar).
func checkStats(t *testing.T, snap *ServerSnapshot, count float64, sums []float64, moments [][]float64, features []string) {
	t.Helper()
	if got := snap.Count(); got != count {
		t.Fatalf("count: got %v, want %v", got, count)
	}
	for i, f := range features {
		m, err := snap.Mean(f)
		if err != nil {
			t.Fatal(err)
		}
		if want := sums[i] / count; m != want {
			t.Fatalf("mean(%s): got %v, want %v", f, m, want)
		}
		for k, g := range features {
			gm, err := snap.SecondMoment(f, g)
			if err != nil {
				t.Fatal(err)
			}
			if gm != moments[i][k] {
				t.Fatalf("moment(%s,%s): got %v, want %v", f, g, gm, moments[i][k])
			}
		}
	}
}

// replanReaders spins readers that hammer snapshots across the replan:
// epochs must never go backwards, statistics must never be NaN, and a
// model must train whenever the join is non-empty — a torn epoch (half
// old maintainer, half new) would trip one of these.
func replanReaders(t *testing.T, snapFn func() *ServerSnapshot, stop chan struct{}, wg *sync.WaitGroup, n int) {
	t.Helper()
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := snapFn()
				if snap.Epoch() < lastEpoch {
					t.Error("epoch went backwards across replan")
					return
				}
				lastEpoch = snap.Epoch()
				m, err := snap.Mean("price")
				if err != nil && !errors.Is(err, ErrEmptySnapshot) {
					t.Error(err)
					return
				}
				if err == nil && math.IsNaN(m) {
					t.Error("NaN mean across replan")
					return
				}
				if snap.Count() > 0 {
					if _, err := snap.TrainLinReg("units", 1e-3); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
}

// TestServerReplanConcurrent is the replan race certificate: concurrent
// producers (with churn) and readers run across explicit Replan() calls
// on a greedily planned server. The plan starts rooted at the empty-tie
// lexicographic winner (Items), replanning mid-stream moves the root to
// the now-largest Sales, and the final snapshot is bitwise-equal to a
// recompute over the surviving tuples — the maintainer swap lost and
// invented nothing.
func TestServerReplanConcurrent(t *testing.T) {
	const writers, readers = 4, 3
	features := []string{"units", "price", "area"}
	for _, strategy := range []string{"fivm", "higher-order", "first-order"} {
		t.Run(strategy, func(t *testing.T) {
			nSales := 400
			if strategy == "first-order" {
				nSales = 120
			}
			stream := serverStream(nSales, 10, 5)

			db := serverSchema(t)
			q, err := db.Query()
			if err != nil {
				t.Fatal(err)
			}
			// No Query.Root: greedy planning on empty relations roots at
			// the lexicographically smallest relation, Items.
			srv, err := q.Serve(features, ServerOptions{
				Strategy:      strategy,
				BatchSize:     13,
				FlushInterval: 200 * time.Microsecond,
				Workers:       2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := srv.Stats().Root; got != "Items" {
				t.Fatalf("initial greedy root: got %s, want Items", got)
			}

			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					replanChurn(t, srv, stream, w, writers)
				}(w)
			}
			stopRead := make(chan struct{})
			var readWg sync.WaitGroup
			replanReaders(t, srv.CovarSnapshot, stopRead, &readWg, readers)

			// Replan repeatedly while producers and readers run: the
			// first call flips the root to Sales, later ones no-op.
			for i := 0; i < 4; i++ {
				if err := srv.Replan(); err != nil {
					t.Fatal(err)
				}
			}

			wg.Wait()
			if err := srv.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := srv.Replan(); err != nil { // post-churn: root settles on Sales
				t.Fatal(err)
			}
			close(stopRead)
			readWg.Wait()

			st := srv.Stats()
			snap := srv.CovarSnapshot()
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			if st.Root != "Sales" {
				t.Fatalf("post-replan root: got %s, want Sales", st.Root)
			}
			if st.Replans == 0 {
				t.Fatal("no replans counted despite a root change")
			}
			if st.Drift < 1 {
				t.Fatalf("drift %v < 1", st.Drift)
			}
			count, sums, moments := recomputeBatch(replanSurvivors(stream, writers), features)
			checkStats(t, snap, count, sums, moments, features)
		})
	}
}

// TestServerAutoReplan: with ReplanThreshold set, the server replans by
// itself at a publish boundary once live cardinalities drift past the
// threshold — no explicit Replan() call anywhere.
func TestServerAutoReplan(t *testing.T) {
	features := []string{"units", "price", "area"}
	stream := serverStream(300, 10, 5)

	db := serverSchema(t)
	q, err := db.Query()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := q.Serve(features, ServerOptions{
		BatchSize:       16,
		FlushInterval:   200 * time.Microsecond,
		ReplanThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range stream {
		if err := srv.Insert(tp.rel, tp.values...); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	snap := srv.CovarSnapshot()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Replans == 0 {
		t.Fatal("auto-replan never fired despite drift past the threshold")
	}
	if st.Root != "Sales" {
		t.Fatalf("auto-replanned root: got %s, want Sales", st.Root)
	}
	// Drift is measured against the new root, so it settles back near 1.
	if st.Drift != 1 {
		t.Fatalf("post-auto-replan drift: got %v, want 1 (Sales is largest)", st.Drift)
	}
	count, sums, moments := recomputeBatch(stream, features)
	checkStats(t, snap, count, sums, moments, features)
}

// TestShardedReplanConcurrent runs the same certificate on a 3-shard
// tier: concurrent partitioned producers and merged readers across a
// global Replan(). All shards must agree on the new root and the merged
// snapshot must equal the survivor recompute.
func TestShardedReplanConcurrent(t *testing.T) {
	const writers, readers = 3, 3
	features := []string{"units", "price", "area"}
	stream := shardedStream(400, 6, 4)

	db := shardedSchema(t)
	q, err := db.Query()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := q.ServeSharded(features, ShardOptions{
		ServerOptions: ServerOptions{
			BatchSize:     13,
			FlushInterval: 200 * time.Microsecond,
		},
		Shards:      3,
		PartitionBy: "store",
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			replanChurn(t, srv, stream, w, writers)
		}(w)
	}
	stopRead := make(chan struct{})
	var readWg sync.WaitGroup
	replanReaders(t, srv.CovarSnapshot, stopRead, &readWg, readers)

	for i := 0; i < 3; i++ {
		if err := srv.Replan(); err != nil {
			t.Fatal(err)
		}
	}

	wg.Wait()
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Replan(); err != nil {
		t.Fatal(err)
	}
	close(stopRead)
	readWg.Wait()

	st := srv.Stats()
	snap := srv.CovarSnapshot()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Root != "Sales" {
		t.Fatalf("global post-replan root: got %s, want Sales", st.Root)
	}
	if st.Replans == 0 {
		t.Fatal("no replans counted across the tier")
	}
	for i, row := range st.Shards {
		if row.Root != st.Root {
			t.Fatalf("shard %d root %s disagrees with global plan %s", i, row.Root, st.Root)
		}
	}
	count, sums, moments := recomputeSharded(replanSurvivors(stream, writers), features)
	checkStats(t, snap, count, sums, moments, features)
}
