package borg

// testing.B entry points, one per paper artifact (DESIGN.md experiments
// E1–E10). Run with:
//
//	go test -bench=. -benchmem
//
// The benchmark bodies exercise the same code paths as cmd/borg-bench at
// a small scale factor so the suite stays minutes, not hours; use the
// CLI with -sf 1.0 for full laptop-scale tables.

import (
	"io"
	"testing"
	"time"

	"borg/internal/agnostic"
	"borg/internal/bench"
	"borg/internal/core"
	"borg/internal/datagen"
	"borg/internal/engine"
	"borg/internal/exec"
	"borg/internal/factor"
	"borg/internal/ifaq"
	"borg/internal/ivm"
	"borg/internal/ml"
	qplan "borg/internal/plan"
)

const benchSF = 0.05

// BenchmarkFig3StructureAgnostic is the materialize→export→import→
// shuffle→SGD pipeline of Figure 3 (the PostgreSQL+TensorFlow column).
func BenchmarkFig3StructureAgnostic(b *testing.B) {
	d := datagen.Retailer(1, benchSF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := agnostic.RunLinReg(d.Join, agnostic.Config{
			Cont: d.Cont, Cat: d.Cat, Response: d.Response,
			Epochs: 1, Batch: 100, LR: 1e-7, Lambda: 1e-3, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3StructureAware is the LMFAO batch + moment-space gradient
// descent of Figure 3 (the LMFAO column).
func BenchmarkFig3StructureAware(b *testing.B) {
	d := datagen.Retailer(1, benchSF)
	p, err := qplan.New(d.Join, qplan.Options{PinnedRoot: d.Root})
	if err != nil {
		b.Fatal(err)
	}
	jt := p.Tree
	specs := core.CovarianceBatch(d.Features(), d.Response)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := core.Compile(jt, specs, core.Optimized(2))
		if err != nil {
			b.Fatal(err)
		}
		results, err := plan.Eval()
		if err != nil {
			b.Fatal(err)
		}
		sigma, err := ml.AssembleSigma(d.Cont, d.Cat, d.Response, results)
		if err != nil {
			b.Fatal(err)
		}
		ml.TrainLinRegGD(sigma, 1e-3, 20000, 1e-10)
	}
}

// BenchmarkFig4Left compares the classical engine against LMFAO on the
// covariance batch (Figure 4 left, batch C) for each dataset.
func BenchmarkFig4Left(b *testing.B) {
	for _, d := range datagen.All(1, benchSF) {
		d := d
		p, err := qplan.New(d.Join, qplan.Options{PinnedRoot: d.Root})
		if err != nil {
			b.Fatal(err)
		}
		jt := p.Tree
		specs := core.CovarianceBatch(d.Features(), d.Response)
		b.Run(d.Name+"/classical", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.MaterializeAndEval(d.Join, specs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(d.Name+"/lmfao", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan, err := core.Compile(jt, specs, core.Optimized(2))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := plan.Eval(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Right measures per-insert maintenance cost for the three
// IVM strategies (Figure 4 right); throughput is the inverse.
func BenchmarkFig4Right(b *testing.B) {
	d := datagen.Retailer(1, benchSF)
	var stream []ivm.Tuple
	for _, name := range d.StreamOrder {
		r := d.DB.Relation(name)
		for i := 0; i < r.NumRows(); i++ {
			stream = append(stream, ivm.Tuple{Rel: name, Values: r.Row(i)})
		}
	}
	mks := []struct {
		name string
		mk   func() (ivm.Maintainer, error)
	}{
		{"F-IVM", func() (ivm.Maintainer, error) { return ivm.NewFIVM(d.Join, d.Root, d.Cont) }},
		{"higher-order", func() (ivm.Maintainer, error) { return ivm.NewHigherOrder(d.Join, d.Root, d.Cont) }},
		{"first-order", func() (ivm.Maintainer, error) { return ivm.NewFirstOrder(d.Join, d.Root, d.Cont) }},
	}
	for _, e := range mks {
		e := e
		b.Run(e.name, func(b *testing.B) {
			m, err := e.mk()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Insert(stream[i%len(stream)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Ablation prices the LMFAO optimizations cumulatively
// (Figure 6) on the Retailer covariance batch.
func BenchmarkFig6Ablation(b *testing.B) {
	d := datagen.Retailer(1, benchSF)
	p, err := qplan.New(d.Join, qplan.Options{PinnedRoot: d.Root})
	if err != nil {
		b.Fatal(err)
	}
	jt := p.Tree
	specs := core.CovarianceBatch(d.Features(), d.Response)
	configs := []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.Options{}},
		{"specialization", core.Options{Specialize: true}},
		{"sharing", core.Options{Specialize: true, Share: true}},
		{"parallelization", core.Options{Specialize: true, Share: true, Runtime: exec.Runtime{Workers: 2}}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan, err := core.Compile(jt, specs, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := plan.Eval(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompression builds the factorized Retailer join (experiment
// E6): the interesting output is the value-count ratio, printed once.
func BenchmarkCompression(b *testing.B) {
	d := datagen.Retailer(1, benchSF)
	p, err := qplan.New(d.Join, qplan.Options{PinnedRoot: d.Root})
	if err != nil {
		b.Fatal(err)
	}
	vo := p.VarOrder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := factor.Build(d.Join, vo)
		if err != nil {
			b.Fatal(err)
		}
		if f.ValueCount() == 0 {
			b.Fatal("empty factorization")
		}
	}
}

// BenchmarkIFAQStages prices each stage of the Section 5.3 pipeline
// (Figure 11, experiment E8).
func BenchmarkIFAQStages(b *testing.B) {
	w := ifaq.Workload{
		Features: []string{"c", "p"},
		Response: "u",
		Alpha:    0.002,
		Iters:    10,
		Join: ifaq.JoinSpec{
			JoinRel:  "Q",
			Base:     "S",
			Children: []ifaq.ChildSpec{{Rel: "R", Key: "s"}, {Rel: "I", Key: "i"}},
		},
	}
	db := NewDatabase()
	s := db.AddRelation("S", Cat("i"), Cat("s"), Num("u"))
	r := db.AddRelation("R", Cat("s"), Num("c"))
	it := db.AddRelation("I", Cat("i"), Num("p"))
	for k := 0; k < 30; k++ {
		if err := r.Append(itoa(k), float64(k%7)); err != nil {
			b.Fatal(err)
		}
		if err := it.Append(itoa(k), float64(k%5)); err != nil {
			b.Fatal(err)
		}
	}
	for k := 0; k < 3000; k++ {
		if err := s.Append(itoa(k%30), itoa((k*7)%30), float64(k%11)); err != nil {
			b.Fatal(err)
		}
	}
	env, err := w.BuildEnv(db.db.Relation("S"), db.db.Relation("R"), db.db.Relation("I"))
	if err != nil {
		b.Fatal(err)
	}
	for _, stage := range ifaq.Stages {
		stage := stage
		b.Run(stage.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(stage, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig5AggregateCounts regenerates the Figure 5 table (it is
// pure synthesis; the benchmark guards against compile-time regressions
// in batch size).
func BenchmarkFig5AggregateCounts(b *testing.B) {
	o := bench.Options{Out: io.Discard, Seed: 1, SF: benchSF, Workers: 2, Budget: time.Second}
	for i := 0; i < b.N; i++ {
		if err := bench.Fig5(o); err != nil {
			b.Fatal(err)
		}
	}
}
